"""Behavioural tests for the four metadata management strategies."""

import pytest

from repro.cloud.deployment import Deployment
from repro.cloud.presets import AZURE_4DC, azure_4dc_topology
from repro.metadata.config import MetadataConfig
from repro.metadata.entry import RegistryEntry
from repro.metadata.stats import OpKind
from repro.metadata.strategies import (
    CentralizedStrategy,
    DecentralizedStrategy,
    HybridStrategy,
    MetadataStrategy,
    ReplicatedStrategy,
)
from repro.metadata.strategies.base import ReadMissError

ALL_STRATEGIES = [
    CentralizedStrategy,
    ReplicatedStrategy,
    DecentralizedStrategy,
    HybridStrategy,
]


@pytest.fixture
def dep():
    return Deployment(
        topology=azure_4dc_topology(jitter=False), n_nodes=8, seed=3
    )


@pytest.fixture
def cfg(fast_config):
    return fast_config


def make(cls, dep, cfg):
    return cls(dep.env, dep.network, dep.sites, cfg)


def drive(env, gen):
    return env.run(until=env.process(gen))


def entry(key="f", site="west-europe"):
    return RegistryEntry(key=key, locations=frozenset({site}))


@pytest.mark.parametrize("cls", ALL_STRATEGIES)
class TestCommonSemantics:
    def test_write_then_read_roundtrip(self, cls, dep, cfg):
        strat = make(cls, dep, cfg)

        def flow():
            yield from strat.write("west-europe", entry())
            got = yield from strat.read(
                "east-us", "f", require_found=True
            )
            return got

        got = drive(dep.env, flow())
        strat.shutdown()
        assert got is not None
        assert "west-europe" in got.locations

    def test_plain_miss_returns_none(self, cls, dep, cfg):
        strat = make(cls, dep, cfg)

        def flow():
            got = yield from strat.read("east-us", "ghost")
            return got

        assert drive(dep.env, flow()) is None
        strat.shutdown()

    def test_ops_recorded(self, cls, dep, cfg):
        strat = make(cls, dep, cfg)

        def flow():
            yield from strat.write("west-europe", entry())
            yield from strat.read("west-europe", "f")

        drive(dep.env, flow())
        strat.shutdown()
        assert strat.stats.count == 2
        assert strat.stats.count_by_kind(OpKind.WRITE) == 1
        assert strat.stats.count_by_kind(OpKind.READ) == 1
        for r in strat.stats.records:
            assert r.latency > 0

    def test_delete_removes_visibility(self, cls, dep, cfg):
        strat = make(cls, dep, cfg)

        def flow():
            yield from strat.write("west-europe", entry())
            yield from strat.flush()
            existed = yield from strat.delete("west-europe", "f")
            got = yield from strat.read("west-europe", "f")
            return existed, got

        existed, got = drive(dep.env, flow())
        strat.shutdown()
        assert existed is True
        assert got is None

    def test_required_read_gives_up_eventually(self, cls, dep, cfg):
        cfg.read_max_retries = 2
        strat = make(cls, dep, cfg)

        def flow():
            yield from strat.read("east-us", "never", require_found=True)

        with pytest.raises(ReadMissError):
            drive(dep.env, flow())
        strat.shutdown()

    def test_write_adds_writer_location(self, cls, dep, cfg):
        strat = make(cls, dep, cfg)

        def flow():
            stored = yield from strat.write(
                "north-europe", RegistryEntry(key="g")
            )
            return stored

        stored = drive(dep.env, flow())
        strat.shutdown()
        assert "north-europe" in stored.locations


class TestCentralized:
    def test_single_instance(self, dep, cfg):
        strat = make(CentralizedStrategy, dep, cfg)
        assert list(strat.registries) == [dep.sites[0]]

    def test_home_site_config(self, dep, cfg):
        cfg.home_site = "east-us"
        strat = make(CentralizedStrategy, dep, cfg)
        assert strat.home_site == "east-us"

    def test_bad_home_site(self, dep, cfg):
        cfg.home_site = "nowhere"
        with pytest.raises(ValueError):
            make(CentralizedStrategy, dep, cfg)

    def test_locality_flag(self, dep, cfg):
        strat = make(CentralizedStrategy, dep, cfg)

        def flow():
            yield from strat.write(strat.home_site, entry("local-key"))
            yield from strat.write("east-us", entry("remote-key"))

        drive(dep.env, flow())
        local, remote = strat.stats.records
        assert local.local and not remote.local

    def test_remote_ops_slower(self, dep, cfg):
        strat = make(CentralizedStrategy, dep, cfg)

        def flow():
            t0 = dep.env.now
            yield from strat.read(strat.home_site, "x")
            local_t = dep.env.now - t0
            t0 = dep.env.now
            yield from strat.read("south-central-us", "x")
            remote_t = dep.env.now - t0
            return local_t, remote_t

        local_t, remote_t = drive(dep.env, flow())
        assert remote_t > local_t * 5


class TestReplicated:
    def test_all_ops_local(self, dep, cfg):
        strat = make(ReplicatedStrategy, dep, cfg)

        def flow():
            for site in AZURE_4DC:
                yield from strat.write(site, entry(f"k-{site}", site))
                yield from strat.read(site, f"k-{site}")

        drive(dep.env, flow())
        strat.shutdown()
        assert all(r.local for r in strat.stats.records)

    def test_remote_visibility_after_sync(self, dep, cfg):
        strat = make(ReplicatedStrategy, dep, cfg)

        def flow():
            yield from strat.write("west-europe", entry())
            # Immediately miss at a remote site (not yet synced)...
            miss = yield from strat.read("east-us", "f")
            # ...then wait for the agent and hit.
            yield dep.env.timeout(cfg.sync_period * 4)
            hit = yield from strat.read("east-us", "f")
            return miss, hit

        miss, hit = drive(dep.env, flow())
        strat.shutdown()
        assert miss is None
        assert hit is not None

    def test_flush_makes_all_visible(self, dep, cfg):
        strat = make(ReplicatedStrategy, dep, cfg)

        def flow():
            for i in range(5):
                yield from strat.write("west-europe", entry(f"k{i}"))
            yield from strat.flush()

        drive(dep.env, flow())
        strat.shutdown()
        for reg in strat.registries.values():
            for i in range(5):
                assert f"k{i}" in reg


class TestDecentralized:
    def test_partitioned_not_replicated(self, dep, cfg):
        strat = make(DecentralizedStrategy, dep, cfg)
        keys = [f"file-{i}" for i in range(40)]

        def flow():
            for k in keys:
                yield from strat.write("west-europe", entry(k))

        drive(dep.env, flow())
        # Every key lives at exactly one instance: its DHT home.
        for k in keys:
            holders = [
                s for s, reg in strat.registries.items() if k in reg
            ]
            assert holders == [strat.home_of(k)]

    def test_local_fraction_about_one_over_n(self, dep, cfg):
        strat = make(DecentralizedStrategy, dep, cfg)

        def flow():
            for i in range(200):
                yield from strat.write("west-europe", entry(f"file-{i}"))

        drive(dep.env, flow())
        frac = strat.stats.local_fraction
        assert 0.10 < frac < 0.45  # ~1/4 for 4 sites


class TestHybrid:
    def test_local_replica_plus_home_copy(self, dep, cfg):
        strat = make(HybridStrategy, dep, cfg)

        def flow():
            yield from strat.write("west-europe", entry("file-x"))
            yield from strat.flush()

        drive(dep.env, flow())
        strat.shutdown()
        home = strat.home_of("file-x")
        assert "file-x" in strat.registries["west-europe"]
        assert "file-x" in strat.registries[home]
        # And nowhere else.
        extra = [
            s
            for s, reg in strat.registries.items()
            if "file-x" in reg and s not in {home, "west-europe"}
        ]
        assert extra == []

    def test_local_read_hit_after_local_write(self, dep, cfg):
        strat = make(HybridStrategy, dep, cfg)

        def flow():
            yield from strat.write("west-europe", entry("file-x"))
            got = yield from strat.read("west-europe", "file-x")
            return got

        got = drive(dep.env, flow())
        strat.shutdown()
        assert got is not None
        assert strat.local_hits >= 1
        # The local-hit read never left the site.
        read_rec = strat.stats.records[-1]
        assert read_rec.local

    def test_remote_read_falls_through_to_home(self, dep, cfg):
        strat = make(HybridStrategy, dep, cfg)

        def flow():
            yield from strat.write("west-europe", entry("file-y"))
            yield from strat.flush()
            # Read from a site that is neither writer nor (necessarily)
            # home: resolves via the hash site.
            sites = [
                s
                for s in AZURE_4DC
                if s not in {"west-europe", strat.home_of("file-y")}
            ]
            got = yield from strat.read(sites[0], "file-y", require_found=True)
            return got

        got = drive(dep.env, flow())
        strat.shutdown()
        assert got is not None

    def test_sync_mode_immediate_home_visibility(self, dep, cfg):
        cfg.hybrid_sync_replication = True
        strat = make(HybridStrategy, dep, cfg)

        def flow():
            yield from strat.write("west-europe", entry("file-z"))
            home = strat.home_of("file-z")
            return home

        home = drive(dep.env, flow())
        strat.shutdown()
        assert "file-z" in strat.registries[home]
        assert strat.pumps == {}

    def test_local_hit_ratio_metric(self, dep, cfg):
        strat = make(HybridStrategy, dep, cfg)

        def flow():
            yield from strat.write("west-europe", entry("a"))
            yield from strat.read("west-europe", "a")  # hit
            yield from strat.flush()
            yield from strat.read("south-central-us", "a")  # likely miss

        drive(dep.env, flow())
        strat.shutdown()
        assert 0 <= strat.local_hit_ratio <= 1
        assert strat.local_hits >= 1
