"""Tests for the ArchitectureController: plug-and-play strategy switching."""

import pytest

from repro.cloud.deployment import Deployment
from repro.cloud.presets import azure_4dc_topology
from repro.metadata.controller import (
    STRATEGIES,
    ArchitectureController,
    StrategyName,
)
from repro.metadata.entry import RegistryEntry
from repro.metadata.strategies import MetadataStrategy
from repro.metadata.strategies.base import MetadataStrategy as Base


@pytest.fixture
def dep():
    return Deployment(
        topology=azure_4dc_topology(jitter=False), n_nodes=4, seed=5
    )


def drive(env, gen):
    return env.run(until=env.process(gen))


class TestNames:
    def test_canonical_aliases(self):
        assert StrategyName.canonical("DN") == StrategyName.DECENTRALIZED
        assert StrategyName.canonical("dr") == StrategyName.HYBRID
        assert StrategyName.canonical("Baseline") == StrategyName.CENTRALIZED
        assert StrategyName.canonical("hybrid") == StrategyName.HYBRID

    def test_all_lists_four(self):
        assert len(StrategyName.all()) == 4


class TestController:
    def test_builds_requested_strategy(self, dep, fast_config):
        ctrl = ArchitectureController(
            dep, strategy="dn", config=fast_config
        )
        assert ctrl.strategy.name == "decentralized"

    def test_unknown_strategy_rejected(self, dep, fast_config):
        with pytest.raises(ValueError, match="unknown strategy"):
            ArchitectureController(
                dep, strategy="quantum", config=fast_config
            )

    def test_proxy_read_write(self, dep, fast_config):
        ctrl = ArchitectureController(
            dep, strategy="centralized", config=fast_config
        )

        def flow():
            yield from ctrl.write(
                "west-europe", RegistryEntry(key="k")
            )
            got = yield from ctrl.read("east-us", "k", require_found=True)
            return got

        assert drive(dep.env, flow()) is not None
        ctrl.shutdown()

    def test_switch_migrates_entries(self, dep, fast_config):
        ctrl = ArchitectureController(
            dep, strategy="centralized", config=fast_config
        )

        def flow():
            for i in range(10):
                yield from ctrl.write(
                    "west-europe", RegistryEntry(key=f"k{i}")
                )
            yield from ctrl.switch("decentralized", migrate=True)
            got = yield from ctrl.read(
                "east-us", "k3", require_found=True
            )
            return got

        got = drive(dep.env, flow())
        ctrl.shutdown()
        assert got is not None
        assert ctrl.strategy.name == "decentralized"

    def test_switch_without_migration_loses_entries(self, dep, fast_config):
        ctrl = ArchitectureController(
            dep, strategy="centralized", config=fast_config
        )

        def flow():
            yield from ctrl.write("west-europe", RegistryEntry(key="k"))
            yield from ctrl.switch("decentralized", migrate=False)
            got = yield from ctrl.read("east-us", "k")
            return got

        assert drive(dep.env, flow()) is None
        ctrl.shutdown()

    def test_switch_costs_simulated_time(self, dep, fast_config):
        ctrl = ArchitectureController(
            dep, strategy="centralized", config=fast_config
        )

        def flow():
            for i in range(20):
                yield from ctrl.write(
                    "west-europe", RegistryEntry(key=f"k{i}")
                )
            t0 = dep.env.now
            yield from ctrl.switch("hybrid", migrate=True)
            return dep.env.now - t0

        cost = drive(dep.env, flow())
        ctrl.shutdown()
        assert cost > 0  # re-partitioning is never free

    def test_register_custom_strategy(self, dep, fast_config):
        class NullStrategy(Base):
            name = "null"

            def _do_write(self, site, entry):
                return entry, True
                yield  # pragma: no cover

            def _do_read(self, site, key):
                return None, True
                yield  # pragma: no cover

        ArchitectureController.register("null", NullStrategy)
        try:
            ctrl = ArchitectureController(
                dep, strategy="null", config=fast_config
            )
            assert ctrl.strategy.name == "null"
        finally:
            STRATEGIES.pop("null", None)

    def test_register_non_strategy_rejected(self):
        with pytest.raises(TypeError):
            ArchitectureController.register("bad", dict)
