"""Tests for RegistryEntry, including semilattice merge properties."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.metadata.entry import RegistryEntry, VersionConflict


SITES = ["west-europe", "north-europe", "east-us", "south-central-us"]

entries = st.builds(
    RegistryEntry,
    key=st.just("shared-key"),
    locations=st.frozensets(st.sampled_from(SITES), max_size=4),
    size=st.integers(min_value=0, max_value=10**9),
    version=st.integers(min_value=0, max_value=100),
    origin_site=st.sampled_from(SITES),
    created_at=st.floats(min_value=0, max_value=1e6, allow_nan=False),
)


class TestBasics:
    def test_empty_key_rejected(self):
        with pytest.raises(ValueError):
            RegistryEntry(key="")

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            RegistryEntry(key="f", size=-1)

    def test_locations_normalized_to_frozenset(self):
        e = RegistryEntry(key="f", locations=["a", "b", "a"])
        assert e.locations == frozenset({"a", "b"})

    def test_with_location(self):
        e = RegistryEntry(key="f", locations=frozenset({"a"}))
        e2 = e.with_location("b")
        assert e2.locations == frozenset({"a", "b"})
        assert e.locations == frozenset({"a"})  # immutable original

    def test_merge_key_mismatch_rejected(self):
        with pytest.raises(ValueError):
            RegistryEntry(key="a").merged_with(RegistryEntry(key="b"))

    def test_serialized_size_grows_with_locations(self):
        small = RegistryEntry(key="f")
        big = RegistryEntry(key="f", locations=frozenset(SITES))
        assert big.serialized_size() > small.serialized_size()

    def test_attributes_roundtrip(self):
        attrs = RegistryEntry.make_attributes({"fmt": "fits", "band": 3})
        e = RegistryEntry(key="f", attributes=attrs)
        assert e.get_attribute("fmt") == "fits"
        assert e.get_attribute("band") == 3
        assert e.get_attribute("missing", "dflt") == "dflt"


class TestMergeSemilattice:
    """Merge must be a join: commutative, associative, idempotent.

    These three properties are what make the lazy propagation scheme
    converge regardless of message ordering (Section III-D).
    """

    @given(a=entries, b=entries)
    def test_commutative_locations(self, a, b):
        ab = a.merged_with(b)
        ba = b.merged_with(a)
        assert ab.locations == ba.locations
        assert ab.version == ba.version

    @given(a=entries, b=entries, c=entries)
    def test_associative_locations(self, a, b, c):
        left = a.merged_with(b).merged_with(c)
        right = a.merged_with(b.merged_with(c))
        assert left.locations == right.locations
        assert left.version == right.version

    @given(a=entries)
    def test_idempotent(self, a):
        aa = a.merged_with(a)
        assert aa.locations == a.locations
        assert aa.version == a.version

    @given(a=entries, b=entries)
    def test_merge_never_loses_locations(self, a, b):
        merged = a.merged_with(b)
        assert a.locations <= merged.locations
        assert b.locations <= merged.locations

    @given(a=entries, b=entries)
    def test_version_is_max(self, a, b):
        assert a.merged_with(b).version == max(a.version, b.version)


class TestVersionConflict:
    def test_fields(self):
        exc = VersionConflict("k", expected=2, actual=5)
        assert exc.key == "k"
        assert exc.expected == 2
        assert exc.actual == 5
