"""Validation tests for MetadataConfig."""

import pytest

from repro.metadata.config import MetadataConfig


class TestDefaultsAreValid:
    def test_default_config_validates(self):
        MetadataConfig().validate()

    def test_defaults_reflect_calibration(self):
        cfg = MetadataConfig()
        assert cfg.service_time == pytest.approx(0.003)
        assert cfg.client_overhead == pytest.approx(0.050)
        assert cfg.sync_period == 2.0
        assert cfg.hybrid_sync_replication is False
        assert cfg.write_lookup is False


@pytest.mark.parametrize(
    "field,value",
    [
        ("service_time", 0),
        ("service_time", -1),
        ("service_concurrency", 0),
        ("client_overhead", -0.1),
        ("merge_entry_time", -1),
        ("sync_period", 0),
        ("replication_flush_interval", 0),
        ("replication_batch_size", 0),
        ("read_max_retries", -1),
        ("read_retry_backoff", 0.5),
        ("virtual_nodes", 0),
    ],
)
def test_invalid_values_rejected(field, value):
    cfg = MetadataConfig(**{field: value})
    with pytest.raises(ValueError):
        cfg.validate()


def test_retry_cap_must_cover_interval():
    cfg = MetadataConfig(read_retry_interval=1.0, read_retry_max_delay=0.5)
    with pytest.raises(ValueError):
        cfg.validate()


def test_config_is_plain_dataclass():
    """Configs clone via the ``__dict__`` idiom used by the harness."""
    cfg = MetadataConfig(home_site="east-us")
    clone = MetadataConfig(**{**cfg.__dict__, "sync_period": 9.0})
    assert clone.home_site == "east-us"
    assert clone.sync_period == 9.0
    assert cfg.sync_period == 2.0
