"""Validation tests for MetadataConfig."""

import pytest

from repro.metadata.config import MetadataConfig


class TestDefaultsAreValid:
    def test_default_config_validates(self):
        MetadataConfig().validate()

    def test_defaults_reflect_calibration(self):
        cfg = MetadataConfig()
        assert cfg.service_time == pytest.approx(0.003)
        assert cfg.client_overhead == pytest.approx(0.050)
        assert cfg.sync_period == 2.0
        assert cfg.hybrid_sync_replication is False
        assert cfg.write_lookup is False


@pytest.mark.parametrize(
    "field,value",
    [
        ("service_time", 0),
        ("service_time", -1),
        ("service_concurrency", 0),
        ("client_overhead", -0.1),
        ("merge_entry_time", -1),
        ("sync_period", 0),
        ("replication_flush_interval", 0),
        ("replication_batch_size", 0),
        ("read_max_retries", -1),
        ("read_retry_backoff", 0.5),
        ("virtual_nodes", 0),
        ("scheduler", "annealing"),
        ("hybrid_locality_weight", -1.0),
        ("hybrid_load_weight", -0.5),
        ("hybrid_transfer_weight", -2.0),
        ("bw_pending_penalty", -0.1),
    ],
)
def test_invalid_values_rejected(field, value):
    cfg = MetadataConfig(**{field: value})
    with pytest.raises(ValueError):
        cfg.validate()


def test_retry_cap_must_cover_interval():
    cfg = MetadataConfig(read_retry_interval=1.0, read_retry_max_delay=0.5)
    with pytest.raises(ValueError):
        cfg.validate()


class TestFromSchedulerArgs:
    def test_none_without_knobs_keeps_base(self):
        assert MetadataConfig.from_scheduler_args(None) is None
        base = MetadataConfig(bandwidth_model="fair")
        assert MetadataConfig.from_scheduler_args(None, base=base) is base

    def test_scheduler_pinned_on_top_of_base(self):
        base = MetadataConfig(bandwidth_model="fair", rpc_flow_weight=2.0)
        cfg = MetadataConfig.from_scheduler_args(
            "bandwidth_aware", bw_pending_penalty=0.5, base=base
        )
        assert cfg.scheduler == "bandwidth_aware"
        assert cfg.bw_pending_penalty == 0.5
        assert cfg.bandwidth_model == "fair"
        assert cfg.rpc_flow_weight == 2.0

    def test_valid_schedulers_accepted(self):
        from repro.scheduling import SCHEDULER_NAMES

        for name in SCHEDULER_NAMES:
            assert (
                MetadataConfig.from_scheduler_args(name).scheduler == name
            )

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(scheduler=None, hybrid_locality_weight=2.0),
            dict(scheduler="locality", hybrid_load_weight=0.5),
            dict(scheduler="bandwidth_aware", hybrid_transfer_weight=2.0),
            dict(scheduler="round_robin", bw_pending_penalty=0.0),
            dict(scheduler=None, bw_pending_penalty=2.0),
        ],
    )
    def test_mismatched_knobs_rejected(self, kwargs):
        scheduler = kwargs.pop("scheduler")
        with pytest.raises(ValueError):
            MetadataConfig.from_scheduler_args(scheduler, **kwargs)

    def test_pending_penalty_allowed_for_hybrid(self):
        cfg = MetadataConfig.from_scheduler_args(
            "hybrid", bw_pending_penalty=0.0, hybrid_locality_weight=3.0
        )
        assert cfg.bw_pending_penalty == 0.0
        assert cfg.hybrid_locality_weight == 3.0


class TestDeprecatedShims:
    """The from_*_args classmethods survive as warned shims over the
    repro.scenario spec path: old signatures, identical configs."""

    def test_all_three_emit_deprecation_warnings(self):
        with pytest.warns(DeprecationWarning, match="from_network_args"):
            MetadataConfig.from_network_args("fair")
        with pytest.warns(DeprecationWarning, match="from_scheduler_args"):
            MetadataConfig.from_scheduler_args("locality")
        with pytest.warns(DeprecationWarning, match="from_workload_args"):
            MetadataConfig.from_workload_args("unbounded")

    def test_network_shim_equals_spec_path(self):
        from repro.scenario import NetworkSpec, config_from_specs

        with pytest.warns(DeprecationWarning):
            shim = MetadataConfig.from_network_args(
                "fair",
                egress_cap_mb=10.0,
                ingress_cap_mb=5.0,
                rpc_flow_weight=2.0,
            )
        spec = config_from_specs(
            network=NetworkSpec(
                bandwidth_model="fair",
                egress_cap_mb=10.0,
                ingress_cap_mb=5.0,
                rpc_flow_weight=2.0,
            )
        )
        assert shim == spec
        with pytest.warns(DeprecationWarning):
            assert MetadataConfig.from_network_args(None) is None

    def test_scheduler_shim_equals_spec_path(self):
        from repro.scenario import SchedulerSpec, config_from_specs

        base = MetadataConfig(bandwidth_model="fair", rpc_flow_weight=2.0)
        with pytest.warns(DeprecationWarning):
            shim = MetadataConfig.from_scheduler_args(
                "hybrid",
                hybrid_locality_weight=3.0,
                bw_pending_penalty=0.5,
                base=base,
            )
        spec = config_from_specs(
            scheduler=SchedulerSpec(
                name="hybrid",
                hybrid_locality_weight=3.0,
                bw_pending_penalty=0.5,
            ),
            base=base,
        )
        assert shim == spec
        assert shim.bandwidth_model == "fair"

    def test_workload_shim_equals_spec_path(self):
        from repro.scenario import config_from_specs

        with pytest.warns(DeprecationWarning):
            shim = MetadataConfig.from_workload_args(
                "max_in_flight", max_in_flight=4
            )
        spec = config_from_specs(admission="max_in_flight", max_in_flight=4)
        assert shim == spec
        assert shim.token_burst == 1

    @pytest.mark.parametrize(
        "call",
        [
            lambda: MetadataConfig.from_network_args(
                "slots", egress_cap_mb=10.0
            ),
            lambda: MetadataConfig.from_scheduler_args(
                "locality", hybrid_load_weight=2.0
            ),
            lambda: MetadataConfig.from_workload_args(
                "unbounded", max_in_flight=2
            ),
        ],
    )
    def test_shims_still_enforce_cross_field_rules(self, call):
        with pytest.warns(DeprecationWarning):
            with pytest.raises(ValueError):
                call()


def test_config_is_plain_dataclass():
    """Configs clone via the ``__dict__`` idiom used by the harness."""
    cfg = MetadataConfig(home_site="east-us")
    clone = MetadataConfig(**{**cfg.__dict__, "sync_period": 9.0})
    assert clone.home_site == "east-us"
    assert clone.sync_period == 9.0
    assert cfg.sync_period == 2.0
