"""Tests for operation statistics and derived figure metrics."""

import numpy as np
import pytest

from repro.metadata.stats import OpKind, OpRecord, OpStats


def rec(kind=OpKind.READ, key="k", site="s", start=0.0, end=1.0, **kw):
    return OpRecord(
        kind=kind,
        key=key,
        site=site,
        started_at=start,
        finished_at=end,
        local=kw.pop("local", True),
        **kw,
    )


class TestOpRecord:
    def test_latency(self):
        assert rec(start=1.0, end=3.5).latency == 2.5

    def test_negative_duration_rejected(self):
        with pytest.raises(ValueError):
            rec(start=5.0, end=1.0)


class TestOpStats:
    def test_counts_by_kind(self):
        s = OpStats()
        s.add(rec(kind=OpKind.READ))
        s.add(rec(kind=OpKind.WRITE))
        s.add(rec(kind=OpKind.WRITE))
        assert s.count == 3
        assert s.count_by_kind(OpKind.WRITE) == 2
        assert s.count_by_kind(OpKind.DELETE) == 0

    def test_local_fraction(self):
        s = OpStats()
        s.add(rec(local=True))
        s.add(rec(local=False))
        assert s.local_fraction == 0.5
        assert OpStats().local_fraction == 0.0

    def test_latency_stats(self):
        s = OpStats()
        s.add(rec(start=0, end=1))
        s.add(rec(start=0, end=3))
        assert s.mean_latency() == 2.0
        assert s.latency_percentile(50) == 2.0

    def test_makespan_and_throughput(self):
        s = OpStats()
        s.add(rec(start=1.0, end=2.0))
        s.add(rec(start=2.0, end=5.0))
        assert s.makespan() == 4.0
        assert s.throughput() == pytest.approx(0.5)

    def test_progress_curve(self):
        s = OpStats()
        for i in range(10):
            s.add(rec(start=0.0, end=float(i + 1)))
        curve = dict(s.progress_curve([10, 50, 100]))
        assert curve[10] == 1.0
        assert curve[50] == 5.0
        assert curve[100] == 10.0

    def test_progress_curve_validates_percent(self):
        s = OpStats()
        s.add(rec())
        with pytest.raises(ValueError):
            s.progress_curve([0])
        with pytest.raises(ValueError):
            s.progress_curve([150])

    def test_per_site_mean_completion(self):
        s = OpStats()
        s.add(rec(site="a", start=0, end=2))
        s.add(rec(site="a", start=0, end=4))
        s.add(rec(site="b", start=0, end=10))
        means = s.per_site_mean_completion()
        assert means["a"] == 3.0
        assert means["b"] == 10.0

    def test_merge(self):
        a, b = OpStats(), OpStats()
        a.add(rec())
        b.add(rec())
        assert a.merge(b).count == 2
        assert a.count == 1  # originals untouched

    def test_total_retries(self):
        s = OpStats()
        s.add(rec(retries=3))
        s.add(rec(retries=1))
        assert s.total_retries == 4
