"""Tests for operation statistics and derived figure metrics."""

from contextlib import contextmanager

import numpy as np
import pytest

from repro.metadata.stats import OpKind, OpRecord, OpStats


def rec(kind=OpKind.READ, key="k", site="s", start=0.0, end=1.0, **kw):
    return OpRecord(
        kind=kind,
        key=key,
        site=site,
        started_at=start,
        finished_at=end,
        local=kw.pop("local", True),
        **kw,
    )


class TestOpRecord:
    def test_latency(self):
        assert rec(start=1.0, end=3.5).latency == 2.5

    def test_negative_duration_rejected(self):
        with pytest.raises(ValueError):
            rec(start=5.0, end=1.0)


class TestOpStats:
    def test_counts_by_kind(self):
        s = OpStats()
        s.add(rec(kind=OpKind.READ))
        s.add(rec(kind=OpKind.WRITE))
        s.add(rec(kind=OpKind.WRITE))
        assert s.count == 3
        assert s.count_by_kind(OpKind.WRITE) == 2
        assert s.count_by_kind(OpKind.DELETE) == 0

    def test_local_fraction(self):
        s = OpStats()
        s.add(rec(local=True))
        s.add(rec(local=False))
        assert s.local_fraction == 0.5
        assert OpStats().local_fraction == 0.0

    def test_latency_stats(self):
        s = OpStats()
        s.add(rec(start=0, end=1))
        s.add(rec(start=0, end=3))
        assert s.mean_latency() == 2.0
        assert s.latency_percentile(50) == 2.0

    def test_makespan_and_throughput(self):
        s = OpStats()
        s.add(rec(start=1.0, end=2.0))
        s.add(rec(start=2.0, end=5.0))
        assert s.makespan() == 4.0
        assert s.throughput() == pytest.approx(0.5)

    def test_progress_curve(self):
        s = OpStats()
        for i in range(10):
            s.add(rec(start=0.0, end=float(i + 1)))
        curve = dict(s.progress_curve([10, 50, 100]))
        assert curve[10] == 1.0
        assert curve[50] == 5.0
        assert curve[100] == 10.0

    def test_progress_curve_validates_percent(self):
        s = OpStats()
        s.add(rec())
        with pytest.raises(ValueError):
            s.progress_curve([0])
        with pytest.raises(ValueError):
            s.progress_curve([150])

    def test_per_site_mean_completion(self):
        s = OpStats()
        s.add(rec(site="a", start=0, end=2))
        s.add(rec(site="a", start=0, end=4))
        s.add(rec(site="b", start=0, end=10))
        means = s.per_site_mean_completion()
        assert means["a"] == 3.0
        assert means["b"] == 10.0

    def test_merge(self):
        a, b = OpStats(), OpStats()
        a.add(rec())
        b.add(rec())
        assert a.merge(b).count == 2
        assert a.count == 1  # originals untouched

    def test_total_retries(self):
        s = OpStats()
        s.add(rec(retries=3))
        s.add(rec(retries=1))
        assert s.total_retries == 4


class TestColumnarLaziness:
    """Columnar operations must not materialize record objects."""

    @contextmanager
    def no_materialize(self):
        """Fail the test if any OpStats materializes records inside."""

        def boom(_self):
            raise AssertionError("columnar path materialized records")

        original = OpStats._materialize
        OpStats._materialize = boom
        try:
            yield
        finally:
            OpStats._materialize = original

    def _filled(self, n=20):
        s = OpStats()
        for i in range(n):
            s.record(
                OpKind.READ if i % 2 else OpKind.WRITE,
                f"k{i}",
                f"site-{i % 3}",
                float(i),
                float(i) + 0.5,
                bool(i % 2),
                run=f"run-{i % 2}",
            )
        return s

    def test_merge_stays_lazy_and_matches_record_view(self):
        a, b = self._filled(10), self._filled(7)
        expected = a.records + b.records  # materialize copies up front
        with self.no_materialize():
            merged = a.merge(b)
            assert merged.count == 17
            assert merged.mean_latency() == pytest.approx(0.5)
        # The object view of the merged stats still equals the old
        # record-concatenation result, value for value.
        assert merged.records == expected

    def test_record_append_stays_lazy(self):
        with self.no_materialize():
            s = OpStats()
            s.record(OpKind.READ, "k", "s", 0.0, 1.0, True)
            assert s.count == 1
            assert s.mean_latency() == 1.0

    def test_for_run_and_tail_stay_lazy(self):
        s = self._filled(12)
        with self.no_materialize():
            sub = s.for_run("run-1")
            tail = s.tail_for_run(6, "run-1")
            assert sub.count == 6
            assert tail.count == 3
        assert all(r.run == "run-1" for r in tail.records)

    def test_tail_for_run_equals_old_slice_filter(self):
        s = self._filled(12)
        old = [r for r in s.records[4:] if r.run == "run-0"]
        assert s.tail_for_run(4, "run-0").records == old


class TestOpStatsEdgeCases:
    def test_latency_percentile_extremes(self):
        s = OpStats()
        for end in (1.0, 2.0, 4.0):
            s.add(rec(start=0.0, end=end))
        assert s.latency_percentile(0) == 1.0
        assert s.latency_percentile(100) == 4.0

    def test_latency_percentile_empty(self):
        assert OpStats().latency_percentile(50) == 0.0
        assert OpStats().latency_percentile(0) == 0.0
        assert OpStats().latency_percentile(100) == 0.0

    def test_latency_percentile_kind_filtered(self):
        s = OpStats()
        s.add(rec(kind=OpKind.READ, start=0.0, end=1.0))
        s.add(rec(kind=OpKind.WRITE, start=0.0, end=9.0))
        assert s.latency_percentile(100, kind=OpKind.READ) == 1.0
        assert s.latency_percentile(0, kind=OpKind.WRITE) == 9.0
        # No DELETE ops recorded: empty filtered view, not an error.
        assert s.latency_percentile(50, kind=OpKind.DELETE) == 0.0

    def test_progress_curve_zero_ops(self):
        assert OpStats().progress_curve([10, 100]) == [
            (10, 0.0),
            (100, 0.0),
        ]

    def test_for_run_unknown_tag(self):
        s = OpStats()
        s.add(rec(run="real"))
        ghost = s.for_run("no-such-run")
        assert ghost.count == 0
        assert ghost.records == []
        assert ghost.makespan() == 0.0
        assert s.tail_for_run(0, "no-such-run").count == 0
