"""Optimistic-concurrency behaviour through the full RPC stack.

The paper leverages the cache's Optimistic Concurrency Model: no locks
are held during metadata operations (workflow data is written once).
These tests exercise the conditional-put path under racing writers.
"""

import pytest

from repro.cloud.network import Network
from repro.cloud.presets import azure_4dc_topology
from repro.metadata.config import MetadataConfig
from repro.metadata.entry import RegistryEntry, VersionConflict
from repro.metadata.registry import MetadataRegistry
from repro.sim import AllOf, Environment


@pytest.fixture
def net(env):
    return Network(env, azure_4dc_topology(jitter=False))


@pytest.fixture
def registry(env):
    return MetadataRegistry(
        env, "west-europe", MetadataConfig(service_time=0.002)
    )


def e(key="f", site="west-europe"):
    return RegistryEntry(key=key, locations=frozenset({site}))


class TestConditionalPut:
    def test_read_modify_write_cycle(self, env, net, registry):
        """The classic OCC loop: get, modify, conditional put."""

        def flow():
            stored = yield from registry.rpc_put(net, "west-europe", e())
            current = yield from registry.rpc_get(net, "west-europe", "f")
            updated = current.with_location("east-us")
            final = yield from registry.rpc_put(
                net, "west-europe", updated, expected_version=current.version
            )
            return final

        final = env.run(until=env.process(flow()))
        assert final.version == 2
        assert final.locations == {"west-europe", "east-us"}

    def test_racing_writers_one_loses(self, env, net, registry):
        """Two writers race the same conditional update; exactly one
        conflicts (no lost update, no lock)."""
        outcomes = []

        def writer(writer_id, location):
            # Same source site for both: symmetric RTTs make the two
            # get/put sequences genuinely interleave at the registry.
            current = yield from registry.rpc_get(net, "north-europe", "f")
            try:
                yield from registry.rpc_put(
                    net,
                    "north-europe",
                    current.with_location(location),
                    expected_version=current.version,
                )
                outcomes.append(("ok", writer_id))
            except VersionConflict:
                outcomes.append(("conflict", writer_id))

        def setup():
            yield from registry.rpc_put(net, "west-europe", e())

        env.run(until=env.process(setup()))
        procs = [
            env.process(writer(1, "north-europe")),
            env.process(writer(2, "east-us")),
        ]
        env.run(until=AllOf(env, procs))
        results = sorted(o for o, _ in outcomes)
        assert results == ["conflict", "ok"]
        assert registry.cache.conflicts == 1

    def test_loser_retry_succeeds(self, env, net, registry):
        """The OCC loser retries with the fresh version and wins."""

        def writer(site):
            while True:
                current = yield from registry.rpc_get(net, site, "f")
                try:
                    yield from registry.rpc_put(
                        net,
                        site,
                        current.with_location(site),
                        expected_version=current.version,
                    )
                    return
                except VersionConflict:
                    continue

        def setup():
            yield from registry.rpc_put(net, "west-europe", e())

        env.run(until=env.process(setup()))
        procs = [
            env.process(writer("north-europe")),
            env.process(writer("east-us")),
        ]
        env.run(until=AllOf(env, procs))
        final = registry.cache.get("f")
        # Both updates landed despite the race.
        assert {"north-europe", "east-us"} <= final.locations
        assert final.version == 3

    def test_merging_upsert_needs_no_occ_for_location_adds(
        self, env, net, registry
    ):
        """The server-side merging upsert makes plain location
        publication conflict-free -- the write-once pattern never needs
        the OCC loop at all."""

        def writer(site):
            yield from registry.rpc_put(
                net, site, RegistryEntry(key="f", locations=frozenset({site}))
            )

        procs = [
            env.process(writer(s))
            for s in ("west-europe", "north-europe", "east-us")
        ]
        env.run(until=AllOf(env, procs))
        final = registry.cache.get("f")
        assert final.locations == {
            "west-europe",
            "north-europe",
            "east-us",
        }
        assert registry.cache.conflicts == 0
