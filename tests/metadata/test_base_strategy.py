"""Tests for the MetadataStrategy base-class machinery."""

import pytest

from repro.cloud.deployment import Deployment
from repro.cloud.presets import azure_4dc_topology
from repro.metadata.config import MetadataConfig
from repro.metadata.entry import RegistryEntry
from repro.metadata.strategies import DecentralizedStrategy, HybridStrategy
from repro.metadata.strategies.base import ReadMissError


@pytest.fixture
def dep():
    return Deployment(
        topology=azure_4dc_topology(jitter=False), n_nodes=4, seed=81
    )


def drive(env, gen):
    return env.run(until=env.process(gen))


class TestRetryBackoff:
    def test_backoff_grows_then_caps(self, dep):
        cfg = MetadataConfig(
            client_overhead=0.0,
            service_time=0.001,
            read_retry_interval=0.1,
            read_retry_backoff=2.0,
            read_retry_max_delay=0.4,
            read_max_retries=4,
        )
        strat = DecentralizedStrategy(dep.env, dep.network, dep.sites, cfg)

        def flow():
            yield from strat.read("west-europe", "ghost", require_found=True)

        t0 = dep.env.now
        with pytest.raises(ReadMissError) as exc:
            drive(dep.env, flow())
        elapsed = dep.env.now - t0
        # Delays: 0.1 + 0.2 + 0.4(capped) + 0.4(capped) = 1.1 s plus
        # five probe round trips.
        assert exc.value.retries == 4
        assert 1.1 <= elapsed <= 1.8

    def test_zero_retries_config(self, dep, fast_config):
        fast_config.read_max_retries = 0
        strat = DecentralizedStrategy(
            dep.env, dep.network, dep.sites, fast_config
        )

        def flow():
            yield from strat.read("west-europe", "ghost", require_found=True)

        with pytest.raises(ReadMissError):
            drive(dep.env, flow())


class TestAccounting:
    def test_retry_count_recorded(self, dep, fast_config):
        strat = HybridStrategy(dep.env, dep.network, dep.sites, fast_config)

        def late_writer():
            yield dep.env.timeout(0.3)
            yield from strat.write("east-us", RegistryEntry(key="late"))

        def reader():
            got = yield from strat.read(
                "west-europe", "late", require_found=True
            )
            return got

        dep.env.process(late_writer())
        got = drive(dep.env, reader())
        strat.shutdown()
        assert got is not None
        read_rec = [r for r in strat.stats.records if r.kind.value == "read"][-1]
        assert read_rec.retries >= 1

    def test_registry_display_and_totals(self, dep, fast_config):
        strat = DecentralizedStrategy(
            dep.env, dep.network, dep.sites, fast_config
        )

        def flow():
            for i in range(12):
                yield from strat.write(
                    "west-europe", RegistryEntry(key=f"k{i}")
                )

        drive(dep.env, flow())
        display = strat.registry_for_display()
        assert set(display) == set(dep.sites)
        assert sum(display.values()) == strat.total_entries() == 12

    def test_client_overhead_charged(self, dep):
        fast = MetadataConfig(client_overhead=0.0, service_time=0.001)
        slow = MetadataConfig(client_overhead=0.5, service_time=0.001)

        def measure(cfg):
            dep2 = Deployment(
                topology=azure_4dc_topology(jitter=False), n_nodes=4, seed=81
            )
            strat = DecentralizedStrategy(
                dep2.env, dep2.network, dep2.sites, cfg
            )

            def flow():
                yield from strat.write(
                    "west-europe", RegistryEntry(key="k")
                )

            dep2.env.run(until=dep2.env.process(flow()))
            return dep2.env.now

        assert measure(slow) >= measure(fast) + 0.5

    def test_empty_sites_rejected(self, dep, fast_config):
        with pytest.raises(ValueError):
            DecentralizedStrategy(dep.env, dep.network, [], fast_config)
