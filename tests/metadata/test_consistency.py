"""Tests for the sync agent, replication pump and consistency tracker."""

import pytest

from repro.cloud.network import Network
from repro.cloud.presets import AZURE_4DC, azure_4dc_topology
from repro.metadata.config import MetadataConfig
from repro.metadata.consistency import (
    ConsistencyTracker,
    ReplicationPump,
    SyncAgent,
)
from repro.metadata.entry import RegistryEntry
from repro.metadata.registry import MetadataRegistry


@pytest.fixture
def net(env):
    return Network(env, azure_4dc_topology(jitter=False))


@pytest.fixture
def fast_cfg():
    return MetadataConfig(
        service_time=0.001,
        merge_entry_time=0.0005,
        sync_period=0.5,
        replication_flush_interval=0.05,
        client_overhead=0.0,
    )


@pytest.fixture
def registries(env, fast_cfg):
    return {
        site: MetadataRegistry(env, site, fast_cfg) for site in AZURE_4DC
    }


def e(key, site):
    return RegistryEntry(
        key=key, locations=frozenset({site}), origin_site=site
    )


class TestConsistencyTracker:
    def test_window_measurement(self, env):
        tr = ConsistencyTracker(env)
        tr.on_created("k")
        env.now = 3.0  # direct clock poke is fine for this unit test
        tr.on_fully_visible("k")
        assert tr.windows == [3.0]
        assert tr.mean_window() == 3.0
        assert tr.pending == 0

    def test_first_creation_wins(self, env):
        tr = ConsistencyTracker(env)
        tr.on_created("k")
        env.now = 1.0
        tr.on_created("k")  # re-created: window measured from first
        env.now = 2.0
        tr.on_fully_visible("k")
        assert tr.windows == [2.0]

    def test_unknown_key_visible_is_noop(self, env):
        tr = ConsistencyTracker(env)
        tr.on_fully_visible("ghost")
        assert tr.windows == []


class TestSyncAgent:
    def test_propagates_to_all_sites(self, env, net, registries, fast_cfg):
        agent = SyncAgent(
            env, net, registries, fast_cfg, agent_site="west-europe"
        )
        registries["west-europe"].cache.put(e("f1", "west-europe"))
        env.run(until=3 * fast_cfg.sync_period)
        agent.stop()
        for site, reg in registries.items():
            assert "f1" in reg, f"f1 missing at {site}"

    def test_no_echo_storm(self, env, net, registries, fast_cfg):
        """Propagated entries must not bounce between instances forever."""
        agent = SyncAgent(
            env, net, registries, fast_cfg, agent_site="west-europe"
        )
        registries["east-us"].cache.put(e("f1", "east-us"))
        env.run(until=6 * fast_cfg.sync_period)
        propagated_early = agent.entries_propagated
        env.run(until=20 * fast_cfg.sync_period)
        # After full propagation, no further copies of f1 move around.
        assert agent.entries_propagated == propagated_early

    def test_concurrent_writes_not_lost(self, env, net, registries, fast_cfg):
        """Writes landing during a sync cycle are picked up by the next."""
        agent = SyncAgent(
            env, net, registries, fast_cfg, agent_site="west-europe"
        )

        def late_writer():
            yield env.timeout(fast_cfg.sync_period * 1.2)
            registries["south-central-us"].cache.put(
                e("late", "south-central-us")
            )

        env.process(late_writer())
        env.run(until=10 * fast_cfg.sync_period)
        agent.stop()
        for reg in registries.values():
            assert "late" in reg

    def test_merge_unions_locations_across_sites(
        self, env, net, registries, fast_cfg
    ):
        agent = SyncAgent(
            env, net, registries, fast_cfg, agent_site="west-europe"
        )
        registries["west-europe"].cache.put(e("f", "west-europe"))
        registries["east-us"].cache.put(e("f", "east-us"))
        env.run(until=6 * fast_cfg.sync_period)
        agent.stop()
        for reg in registries.values():
            assert reg.cache.get("f").locations >= {
                "west-europe",
                "east-us",
            }

    def test_lag_reporting(self, env, net, registries, fast_cfg):
        agent = SyncAgent(
            env, net, registries, fast_cfg, agent_site="west-europe"
        )
        registries["north-europe"].cache.put(e("x", "north-europe"))
        assert agent.lag >= 1
        env.run(until=5 * fast_cfg.sync_period)
        # Polling drains the lag even though merges appended to logs.
        assert agent.cycles >= 2

    def test_bad_agent_site_rejected(self, env, net, registries, fast_cfg):
        with pytest.raises(ValueError):
            SyncAgent(env, net, registries, fast_cfg, agent_site="mars")


class TestReplicationPump:
    def test_flush_delivers_to_target(self, env, net, registries, fast_cfg):
        pump = ReplicationPump(
            env, net, "west-europe", registries, fast_cfg
        )
        pump.enqueue(e("f1", "west-europe"), "east-us")
        env.run(until=5 * fast_cfg.replication_flush_interval)
        pump.stop()
        assert "f1" in registries["east-us"]
        assert pump.entries_replicated == 1

    def test_batching_groups_by_destination(
        self, env, net, registries, fast_cfg
    ):
        pump = ReplicationPump(
            env, net, "west-europe", registries, fast_cfg
        )
        for i in range(6):
            target = "east-us" if i % 2 == 0 else "north-europe"
            pump.enqueue(e(f"f{i}", "west-europe"), target)
        env.run(until=5 * fast_cfg.replication_flush_interval)
        pump.stop()
        # 6 entries, 2 destinations -> at most 2 batches for this wave.
        assert pump.batches_flushed <= 2
        assert pump.entries_replicated == 6

    def test_batch_size_triggers_early_flush(
        self, env, net, registries, fast_cfg
    ):
        fast_cfg.replication_batch_size = 4
        fast_cfg.replication_flush_interval = 100.0  # never by timer
        pump = ReplicationPump(
            env, net, "west-europe", registries, fast_cfg
        )
        for i in range(4):
            pump.enqueue(e(f"f{i}", "west-europe"), "east-us")
        env.run(until=1.0)
        assert pump.entries_replicated == 4

    def test_local_enqueue_rejected(self, env, net, registries, fast_cfg):
        pump = ReplicationPump(
            env, net, "west-europe", registries, fast_cfg
        )
        with pytest.raises(ValueError):
            pump.enqueue(e("f", "west-europe"), "west-europe")

    def test_backlog_tracking(self, env, net, registries, fast_cfg):
        pump = ReplicationPump(
            env, net, "west-europe", registries, fast_cfg
        )
        pump.enqueue(e("f", "west-europe"), "east-us")
        assert pump.backlog == 1
        env.run(until=1.0)
        assert pump.backlog == 0
