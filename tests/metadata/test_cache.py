"""Tests for the primary/replica cache tier with optimistic concurrency."""

import pytest

from repro.metadata.cache import CacheFailure, CacheManager
from repro.metadata.entry import RegistryEntry, VersionConflict


@pytest.fixture
def cache():
    return CacheManager("test-cache")


def e(key="f", locations=("a",), **kw):
    return RegistryEntry(key=key, locations=frozenset(locations), **kw)


class TestBasicOps:
    def test_get_missing_returns_none(self, cache):
        assert cache.get("nope") is None

    def test_put_bumps_version(self, cache):
        stored = cache.put(e())
        assert stored.version == 1
        stored2 = cache.put(e(), expected_version=1)
        assert stored2.version == 2

    def test_put_wrong_version_conflicts(self, cache):
        cache.put(e())
        with pytest.raises(VersionConflict):
            cache.put(e(), expected_version=7)
        assert cache.conflicts == 1

    def test_unconditional_upsert(self, cache):
        cache.put(e())
        cache.put(e())  # no expected_version: always allowed
        assert cache.get("f").version == 2

    def test_delete(self, cache):
        cache.put(e())
        assert cache.delete("f") is True
        assert cache.delete("f") is False
        assert cache.get("f") is None

    def test_len_contains_keys(self, cache):
        cache.put(e("x"))
        cache.put(e("y"))
        assert len(cache) == 2
        assert "x" in cache
        assert sorted(cache.keys()) == ["x", "y"]


class TestMerge:
    def test_merge_unions_locations(self, cache):
        cache.put(e(locations=("a",)))
        cache.merge(e(locations=("b",)))
        assert cache.get("f").locations == frozenset({"a", "b"})

    def test_merge_into_empty(self, cache):
        cache.merge(e(locations=("c",)))
        assert cache.get("f").locations == frozenset({"c"})

    def test_merge_idempotent(self, cache):
        cache.merge(e())
        before = cache.get("f")
        cache.merge(e())
        after = cache.get("f")
        assert before.locations == after.locations


class TestUpdateLog:
    def test_updates_since_cursor(self, cache):
        cache.put(e("a"))
        cache.put(e("b"))
        batch, cursor = cache.updates_since(0)
        assert [x.key for x in batch] == ["a", "b"]
        cache.put(e("c"))
        batch2, cursor2 = cache.updates_since(cursor)
        assert [x.key for x in batch2] == ["c"]
        assert cursor2 == 3

    def test_negative_cursor_rejected(self, cache):
        with pytest.raises(ValueError):
            cache.updates_since(-1)


class TestHighAvailability:
    def test_replica_mirrors_primary(self, cache):
        cache.put(e("a"))
        cache.put(e("b"))
        assert cache.is_consistent_with_replica()

    def test_failover_preserves_data(self, cache):
        cache.put(e("a"))
        cache.put(e("b", locations=("z",)))
        cache.fail_primary()
        assert cache.failovers == 1
        assert cache.get("a") is not None
        assert cache.get("b").locations == frozenset({"z"})
        # The rebuilt replica is consistent again.
        assert cache.is_consistent_with_replica()

    def test_writes_continue_after_failover(self, cache):
        cache.put(e("a"))
        cache.fail_primary()
        cache.put(e("c"))
        assert cache.get("c") is not None
        assert cache.is_consistent_with_replica()

    def test_log_survives_failover(self, cache):
        cache.put(e("a"))
        cache.fail_primary()
        batch, _ = cache.updates_since(0)
        assert [x.key for x in batch] == ["a"]

    def test_replica_failure_rebuilds(self, cache):
        cache.put(e("a"))
        cache.fail_replica()
        assert cache.is_consistent_with_replica()

    def test_double_failure_fails(self, cache):
        cache.fail_primary()  # promotes replica, makes a new one
        cache._replica.alive = False
        with pytest.raises(CacheFailure):
            cache.fail_primary()
