"""Property-based eventual-consistency checks across all strategies.

The core guarantee of Section III-D: after all lazy propagation drains,
*every* write is visible at every responsible instance, and each key's
location set equals the union of all locations ever written for it --
regardless of which sites wrote, in which order, under which strategy.

A sequential in-memory reference model computes the expected final
state; hypothesis generates adversarial multi-site write sequences.
"""

from typing import Dict, FrozenSet, List, Tuple

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.cloud.deployment import Deployment
from repro.cloud.presets import AZURE_4DC, azure_4dc_topology
from repro.metadata.config import MetadataConfig
from repro.metadata.controller import STRATEGIES, StrategyName
from repro.metadata.entry import RegistryEntry

SITES = list(AZURE_4DC)

# (key index, writing site index) sequences.
write_sequences = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=7),
        st.integers(min_value=0, max_value=3),
    ),
    min_size=1,
    max_size=40,
)


def _fast_config() -> MetadataConfig:
    return MetadataConfig(
        client_overhead=0.0,
        service_time=0.0005,
        merge_entry_time=0.0002,
        sync_period=0.2,
        replication_flush_interval=0.05,
        read_retry_interval=0.05,
        read_retry_max_delay=0.2,
    )


def _run_sequence(strategy_name: str, sequence) -> Tuple[dict, object]:
    dep = Deployment(
        topology=azure_4dc_topology(jitter=False), n_nodes=4, seed=1
    )
    cls = STRATEGIES[strategy_name]
    strat = cls(dep.env, dep.network, dep.sites, _fast_config())

    def flow():
        for key_idx, site_idx in sequence:
            yield from strat.write(
                SITES[site_idx],
                RegistryEntry(
                    key=f"k{key_idx}",
                    locations=frozenset({SITES[site_idx]}),
                ),
            )
        yield from strat.flush()
        # Replicated convergence is agent-paced; give it a few cycles.
        yield dep.env.timeout(2.0)

    dep.env.run(until=dep.env.process(flow()))
    strat.shutdown()
    return dep, strat


def _reference(sequence) -> Dict[str, FrozenSet[str]]:
    expected: Dict[str, FrozenSet[str]] = {}
    for key_idx, site_idx in sequence:
        key = f"k{key_idx}"
        expected[key] = expected.get(key, frozenset()) | {SITES[site_idx]}
    return expected


@pytest.mark.parametrize(
    "strategy_name",
    StrategyName.all() + ["subtree", "k-replicated"],
)
@given(sequence=write_sequences)
@settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_final_state_matches_reference(strategy_name, sequence):
    dep, strat = _run_sequence(strategy_name, sequence)
    expected = _reference(sequence)

    env = dep.env
    for key, locations in expected.items():
        # Read from a site that never wrote this key: its view resolves
        # at the authoritative instance (home/owner/central), which must
        # hold the full merged location set.  (A *writer's* local
        # replica under the hybrid strategy may legitimately be stale
        # for updated entries -- see test_hybrid_local_replica_staleness.)
        non_writers = [s for s in SITES if s not in locations]
        reader = non_writers[0] if non_writers else SITES[0]

        def check(key=key, reader=reader):
            entry = yield from strat.read(reader, key, require_found=True)
            return entry

        entry = env.run(until=env.process(check()))
        assert entry is not None, f"{key} lost under {strategy_name}"
        if strategy_name == StrategyName.HYBRID and not non_writers:
            # All four sites wrote: any reader is a writer with a
            # possibly-stale local replica; check the home copy instead.
            entry = strat.registries[strat.home_of(key)].cache.get(key)
        # The merged location set must contain every site that wrote.
        assert locations <= entry.locations, (
            f"{strategy_name}: {key} lost locations "
            f"{locations - entry.locations}"
        )


@given(sequence=write_sequences)
@settings(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_replicated_full_convergence(sequence):
    """After the agent drains, every instance holds every key."""
    dep, strat = _run_sequence(StrategyName.REPLICATED, sequence)
    expected = _reference(sequence)
    for site, registry in strat.registries.items():
        for key in expected:
            assert key in registry, f"{key} missing at {site}"


def test_hybrid_local_replica_staleness_is_bounded_to_writers():
    """The documented hybrid semantics: a writer's local replica may
    miss *later* location updates from other sites, but the DHT home
    always holds the full merged set (write-once workloads make the
    stale window irrelevant in practice -- Section III-D)."""
    sequence = [(0, 0), (0, 1)]  # k0 written at WE, then at NE
    dep, strat = _run_sequence(StrategyName.HYBRID, sequence)
    home = strat.home_of("k0")
    home_entry = strat.registries[home].cache.get("k0")
    assert {"west-europe", "north-europe"} <= home_entry.locations
    # The first writer's replica predates the second write.
    we_entry = strat.registries["west-europe"].cache.get("k0")
    assert "west-europe" in we_entry.locations


@given(sequence=write_sequences)
@settings(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_hybrid_home_and_writer_copies(sequence):
    """Lazy hybrid: each key ends at its DHT home, plus every writer
    site keeps its local replica."""
    dep, strat = _run_sequence(StrategyName.HYBRID, sequence)
    expected = _reference(sequence)
    for key, writers in expected.items():
        home = strat.home_of(key)
        assert key in strat.registries[home]
        for site in writers:
            assert key in strat.registries[site]
