"""Tests for the related-work comparison strategies and extensions."""

import pytest

from repro.cloud.deployment import Deployment
from repro.cloud.presets import AZURE_4DC, azure_4dc_topology
from repro.metadata.controller import ArchitectureController
from repro.metadata.entry import RegistryEntry
from repro.metadata.strategies.extensions import (
    KReplicatedStrategy,
    RelationalDBStrategy,
    SubtreePartitionedStrategy,
)


@pytest.fixture
def dep():
    return Deployment(
        topology=azure_4dc_topology(jitter=False), n_nodes=8, seed=31
    )


def drive(env, gen):
    return env.run(until=env.process(gen))


def e(key, site="west-europe"):
    return RegistryEntry(key=key, locations=frozenset({site}))


class TestSubtreePartitioned:
    def test_directory_colocation(self, dep, fast_config):
        """All entries under one directory live at one site -- maximal
        locality, and the hot-directory hazard."""
        strat = SubtreePartitionedStrategy(
            dep.env, dep.network, dep.sites, fast_config
        )

        def flow():
            for i in range(30):
                yield from strat.write("west-europe", e(f"hotdir/file-{i}"))

        drive(dep.env, flow())
        owner = strat.site_for("hotdir/anything")
        assert len(strat.registries[owner]) == 30
        for site, reg in strat.registries.items():
            if site != owner:
                assert len(reg) == 0

    def test_imbalance_vs_hashing(self, dep, fast_config):
        """A single hot directory maximally imbalances subtree
        partitioning while consistent hashing spreads it."""
        from repro.metadata.strategies import DecentralizedStrategy

        sub = SubtreePartitionedStrategy(
            dep.env, dep.network, dep.sites, fast_config
        )
        dht = DecentralizedStrategy(
            dep.env, dep.network, dep.sites, fast_config
        )

        def flow(strategy):
            for i in range(80):
                yield from strategy.write("west-europe", e(f"hot/f-{i}"))

        drive(dep.env, flow(sub))
        drive(dep.env, flow(dht))
        assert sub.load_imbalance() == pytest.approx(len(dep.sites))
        dht_counts = [len(r) for r in dht.registries.values()]
        assert max(dht_counts) < 80  # spread over several sites

    def test_flat_keys_form_singleton_subtrees(self):
        assert SubtreePartitionedStrategy.subtree_of("flatfile") == "flatfile"
        assert SubtreePartitionedStrategy.subtree_of("a/b/c") == "a"

    def test_read_roundtrip(self, dep, fast_config):
        strat = SubtreePartitionedStrategy(
            dep.env, dep.network, dep.sites, fast_config
        )

        def flow():
            yield from strat.write("east-us", e("dir/x", "east-us"))
            got = yield from strat.read("north-europe", "dir/x")
            return got

        assert drive(dep.env, flow()) is not None


class TestRelationalDB:
    def test_db_overhead_slows_service(self, dep, fast_config):
        from repro.metadata.strategies import CentralizedStrategy

        db = RelationalDBStrategy(dep.env, dep.network, dep.sites, fast_config)
        mem = CentralizedStrategy(dep.env, dep.network, dep.sites, fast_config)
        assert db.registry.config.service_time == pytest.approx(
            mem.registry.config.service_time * 10
        )

    def test_functional_roundtrip(self, dep, fast_config):
        strat = RelationalDBStrategy(
            dep.env, dep.network, dep.sites, fast_config
        )

        def flow():
            yield from strat.write("west-europe", e("row-1"))
            got = yield from strat.read("east-us", "row-1")
            return got

        assert drive(dep.env, flow()) is not None

    def test_slower_than_in_memory_under_load(self, dep, fast_config):
        """The paper's claim: DBs are too heavy for metadata-intensive
        workloads."""
        from repro.experiments.synthetic import run_synthetic_workload

        mem = run_synthetic_workload(
            "centralized", n_nodes=8, ops_per_node=60, seed=1,
            config=fast_config,
        )
        db = run_synthetic_workload(
            "relational-db", n_nodes=8, ops_per_node=60, seed=1,
            config=fast_config,
        )
        assert db.makespan > mem.makespan


class TestKReplicated:
    def test_entries_at_k_sites(self, dep, fast_config):
        strat = KReplicatedStrategy(
            dep.env, dep.network, dep.sites, fast_config, replication_factor=2
        )

        def flow():
            for i in range(20):
                yield from strat.write("west-europe", e(f"f{i}"))

        drive(dep.env, flow())
        for i in range(20):
            holders = [
                s for s, reg in strat.registries.items() if f"f{i}" in reg
            ]
            assert sorted(holders) == sorted(strat.replica_sites(f"f{i}"))
            assert len(holders) == 2

    def test_k_capped_by_site_count(self, dep, fast_config):
        strat = KReplicatedStrategy(
            dep.env, dep.network, dep.sites, fast_config, replication_factor=99
        )
        assert strat.k == len(dep.sites)

    def test_invalid_k(self, dep, fast_config):
        with pytest.raises(ValueError):
            KReplicatedStrategy(
                dep.env, dep.network, dep.sites, fast_config,
                replication_factor=0,
            )

    def test_read_uses_nearest_replica(self, dep, fast_config):
        strat = KReplicatedStrategy(
            dep.env, dep.network, dep.sites, fast_config, replication_factor=4
        )

        def flow():
            yield from strat.write("west-europe", e("everywhere"))
            t0 = dep.env.now
            yield from strat.read("south-central-us", "everywhere")
            return dep.env.now - t0

        # k=4 => a replica exists at every site: the read is local.
        latency = drive(dep.env, flow())
        assert latency < 0.02

    def test_delete_removes_all_replicas(self, dep, fast_config):
        strat = KReplicatedStrategy(
            dep.env, dep.network, dep.sites, fast_config, replication_factor=3
        )

        def flow():
            yield from strat.write("west-europe", e("gone"))
            existed = yield from strat.delete("west-europe", "gone")
            return existed

        assert drive(dep.env, flow()) is True
        assert all("gone" not in reg for reg in strat.registries.values())


class TestControllerIntegration:
    @pytest.mark.parametrize(
        "name", ["subtree", "relational-db", "k-replicated"]
    )
    def test_available_via_controller(self, dep, fast_config, name):
        ctrl = ArchitectureController(dep, strategy=name, config=fast_config)

        def flow():
            yield from ctrl.write("west-europe", e("k"))
            got = yield from ctrl.read("east-us", "k", require_found=True)
            return got

        assert drive(dep.env, flow()) is not None
        ctrl.shutdown()
