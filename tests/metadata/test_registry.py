"""Tests for the per-site registry service (queueing + service time)."""

import pytest

from repro.cloud.network import Network
from repro.cloud.presets import azure_4dc_topology
from repro.metadata.config import MetadataConfig
from repro.metadata.entry import RegistryEntry, VersionConflict
from repro.metadata.registry import MetadataRegistry


@pytest.fixture
def net(env):
    return Network(env, azure_4dc_topology(jitter=False))


@pytest.fixture
def registry(env):
    return MetadataRegistry(
        env, "west-europe", MetadataConfig(service_time=0.01)
    )


def run(env, gen):
    return env.run(until=env.process(gen))


def e(key="f", site="west-europe"):
    return RegistryEntry(key=key, locations=frozenset({site}))


class TestServerSide:
    def test_get_put_roundtrip(self, env, registry):
        def ops():
            stored = yield from registry.serve_put(e())
            got = yield from registry.serve_get("f")
            return stored, got

        stored, got = run(env, ops())
        assert stored.version == 1
        assert got == stored

    def test_service_time_charged(self, env, registry):
        def ops():
            yield from registry.serve_get("missing")

        run(env, ops())
        assert env.now == pytest.approx(0.01)
        assert registry.ops_served == 1

    def test_requests_queue_at_capacity(self, env, registry):
        """Concurrent ops serialize through the single service slot."""
        finish = []

        def op():
            yield from registry.serve_get("x")
            finish.append(env.now)

        for _ in range(3):
            env.process(op())
        env.run()
        assert finish == pytest.approx([0.01, 0.02, 0.03])
        assert registry.max_queue_length == 2

    def test_concurrency_config(self, env):
        reg = MetadataRegistry(
            env,
            "west-europe",
            MetadataConfig(service_time=0.01, service_concurrency=3),
        )
        finish = []

        def op():
            yield from reg.serve_get("x")
            finish.append(env.now)

        for _ in range(3):
            env.process(op())
        env.run()
        assert finish == pytest.approx([0.01, 0.01, 0.01])

    def test_version_conflict_propagates(self, env, registry):
        def ops():
            yield from registry.serve_put(e())
            yield from registry.serve_put(e(), expected_version=9)

        with pytest.raises(VersionConflict):
            run(env, ops())

    def test_merge_batch_costs_per_entry(self, env, registry):
        batch = [e(f"k{i}") for i in range(10)]

        def ops():
            n = yield from registry.serve_merge_batch(batch)
            return n

        assert run(env, ops()) == 10
        assert env.now == pytest.approx(
            10 * registry.config.merge_entry_time
        )
        assert registry.entries_merged == 10

    def test_empty_merge_batch_is_free(self, env, registry):
        def ops():
            n = yield from registry.serve_merge_batch([])
            return n

        assert run(env, ops()) == 0
        assert env.now == 0.0

    def test_updates_since(self, env, registry):
        def ops():
            yield from registry.serve_put(e("a"))
            yield from registry.serve_put(e("b"))
            updates, cursor = yield from registry.serve_updates_since(0)
            return updates, cursor

        updates, cursor = run(env, ops())
        assert [u.key for u in updates] == ["a", "b"]
        assert cursor == 2

    def test_delete(self, env, registry):
        def ops():
            yield from registry.serve_put(e())
            first = yield from registry.serve_delete("f")
            second = yield from registry.serve_delete("f")
            return first, second

        assert run(env, ops()) == (True, False)


class TestClientSide:
    def test_rpc_get_pays_wan(self, env, net, registry):
        def ops():
            yield from registry.rpc_get(net, "east-us", "missing")

        run(env, ops())
        # Two transatlantic legs dominate.
        assert env.now >= 2 * 0.040

    def test_rpc_put_stores(self, env, net, registry):
        def ops():
            stored = yield from registry.rpc_put(net, "east-us", e())
            return stored

        stored = run(env, ops())
        assert registry.cache.get("f") == stored

    def test_rpc_merge_batch(self, env, net, registry):
        def ops():
            n = yield from registry.rpc_merge_batch(
                net, "north-europe", [e("a"), e("b")]
            )
            return n

        assert run(env, ops()) == 2
        assert "a" in registry and "b" in registry

    def test_utilization_accounting(self, env, registry):
        def ops():
            yield from registry.serve_get("x")

        env.process(ops())
        env.run(until=0.02)
        assert registry.utilization() == pytest.approx(0.5)
