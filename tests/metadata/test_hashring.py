"""Tests for DHT placement: modulo partitioner and consistent hash ring."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metadata.hashring import (
    ConsistentHashRing,
    ModuloPartitioner,
    stable_hash,
)

SITES = ["west-europe", "north-europe", "east-us", "south-central-us"]


class TestStableHash:
    def test_deterministic(self):
        assert stable_hash("file-1") == stable_hash("file-1")

    def test_salt_changes_hash(self):
        assert stable_hash("x", salt="a") != stable_hash("x", salt="b")

    def test_64_bit_range(self):
        h = stable_hash("anything")
        assert 0 <= h < 2**64


class TestModuloPartitioner:
    def test_deterministic_placement(self):
        p = ModuloPartitioner(SITES)
        assert p.site_for("f") == p.site_for("f")

    def test_covers_all_sites(self):
        p = ModuloPartitioner(SITES)
        hit = {p.site_for(f"file-{i}") for i in range(1000)}
        assert hit == set(SITES)

    def test_roughly_uniform(self):
        p = ModuloPartitioner(SITES)
        counts = {s: 0 for s in SITES}
        n = 8000
        for i in range(n):
            counts[p.site_for(f"file-{i}")] += 1
        for c in counts.values():
            assert abs(c - n / 4) < n / 4 * 0.25

    def test_validation(self):
        with pytest.raises(ValueError):
            ModuloPartitioner([])
        with pytest.raises(ValueError):
            ModuloPartitioner(["a", "a"])


class TestConsistentHashRing:
    def test_deterministic_placement(self):
        r1 = ConsistentHashRing(SITES, virtual_nodes=32)
        r2 = ConsistentHashRing(SITES, virtual_nodes=32)
        for i in range(100):
            assert r1.site_for(f"f{i}") == r2.site_for(f"f{i}")

    def test_balance_with_virtual_nodes(self):
        ring = ConsistentHashRing(SITES, virtual_nodes=128)
        counts = ring.load_distribution(f"file-{i}" for i in range(8000))
        for c in counts.values():
            assert 0.5 * 2000 < c < 1.6 * 2000

    def test_add_site_membership(self):
        ring = ConsistentHashRing(SITES[:2])
        ring.add_site("new-dc")
        assert "new-dc" in ring
        with pytest.raises(ValueError):
            ring.add_site("new-dc")

    def test_remove_site(self):
        ring = ConsistentHashRing(SITES)
        ring.remove_site("east-us")
        assert "east-us" not in ring
        for i in range(200):
            assert ring.site_for(f"f{i}") != "east-us"
        with pytest.raises(KeyError):
            ring.remove_site("east-us")

    def test_minimal_migration_on_join(self):
        """Consistent hashing's raison d'etre: a join moves ~1/n of keys."""
        keys = [f"file-{i}" for i in range(4000)]
        ring = ConsistentHashRing(SITES, virtual_nodes=64)
        before = {k: ring.site_for(k) for k in keys}
        ring.add_site("tokyo")
        moved = sum(1 for k in keys if ring.site_for(k) != before[k])
        # Ideal is 1/5 = 20 %; allow generous slack but far below the
        # ~80 % a modulo partitioner would move.
        assert moved / len(keys) < 0.35
        # All moved keys landed on the new site.
        for k in keys:
            if ring.site_for(k) != before[k]:
                assert ring.site_for(k) == "tokyo"

    def test_leave_only_reassigns_departed_keys(self):
        keys = [f"file-{i}" for i in range(4000)]
        ring = ConsistentHashRing(SITES, virtual_nodes=64)
        before = {k: ring.site_for(k) for k in keys}
        ring.remove_site("north-europe")
        for k in keys:
            if before[k] != "north-europe":
                assert ring.site_for(k) == before[k]

    def test_preference_list(self):
        ring = ConsistentHashRing(SITES, virtual_nodes=64)
        prefs = ring.preference_list("some-key", 3)
        assert len(prefs) == 3
        assert len(set(prefs)) == 3
        assert prefs[0] == ring.site_for("some-key")

    def test_preference_list_capped_by_sites(self):
        ring = ConsistentHashRing(["a", "b"], virtual_nodes=8)
        assert len(ring.preference_list("k", 10)) == 2

    def test_validation(self):
        with pytest.raises(ValueError):
            ConsistentHashRing([], virtual_nodes=8)
        with pytest.raises(ValueError):
            ConsistentHashRing(SITES, virtual_nodes=0)
        with pytest.raises(ValueError):
            ConsistentHashRing(SITES).preference_list("k", 0)


class TestRingProperties:
    @given(
        keys=st.lists(st.text(min_size=1, max_size=30), min_size=1, max_size=100),
        vnodes=st.integers(min_value=1, max_value=64),
    )
    @settings(max_examples=40)
    def test_placement_always_valid(self, keys, vnodes):
        ring = ConsistentHashRing(SITES, virtual_nodes=vnodes)
        for k in keys:
            assert ring.site_for(k) in SITES

    @given(
        keys=st.lists(
            st.text(min_size=1, max_size=20), min_size=1, max_size=60
        ),
        leaver=st.sampled_from(SITES),
    )
    @settings(max_examples=40)
    def test_leave_join_roundtrip_restores_placement(self, keys, leaver):
        """Removing then re-adding a site restores the exact placement."""
        ring = ConsistentHashRing(SITES, virtual_nodes=16)
        before = {k: ring.site_for(k) for k in keys}
        ring.remove_site(leaver)
        ring.add_site(leaver)
        assert {k: ring.site_for(k) for k in keys} == before


class TestRingBoundaries:
    """Exact-point and wrap-around placement (bisect right-bias)."""

    @pytest.fixture
    def ring(self):
        return ConsistentHashRing(SITES, virtual_nodes=8)

    def _pin_key(self, monkeypatch, key, point):
        """Make ``key`` hash exactly to ``point`` (others unchanged)."""
        from repro.metadata import hashring as hr

        real = hr.stable_hash
        monkeypatch.setattr(
            hr,
            "stable_hash",
            lambda v, salt="": point if v == key else real(v, salt),
        )

    def test_key_on_vnode_point_goes_to_successor(self, ring, monkeypatch):
        """bisect.bisect is right-biased: a key hashing *exactly* onto a
        virtual-node point belongs to the strictly-next vnode's arc."""
        mid = len(ring._ring) // 2
        point = ring._hashes[mid]
        successor_site = ring._ring[mid + 1][1]
        self._pin_key(monkeypatch, "boundary-key", point)
        assert ring.site_for("boundary-key") == successor_site

    def test_key_on_last_vnode_point_wraps_to_first(self, ring, monkeypatch):
        point = ring._hashes[-1]  # exactly on the largest vnode hash
        self._pin_key(monkeypatch, "wrap-key", point)
        assert ring.site_for("wrap-key") == ring._ring[0][1]

    def test_key_beyond_last_vnode_wraps_to_first(self, ring, monkeypatch):
        self._pin_key(monkeypatch, "wrap-key", ring._hashes[-1] + 1)
        assert ring.site_for("wrap-key") == ring._ring[0][1]

    def test_key_below_first_vnode_maps_to_first(self, ring, monkeypatch):
        self._pin_key(monkeypatch, "low-key", 0)
        assert ring.site_for("low-key") == ring._ring[0][1]

    @pytest.mark.parametrize("offset", [-1, 0, 1])
    def test_preference_list_consistent_at_boundaries(
        self, ring, monkeypatch, offset
    ):
        """preference_list(k, 1)[0] == site_for(k) exactly on, just
        before and just after a vnode point -- including the wrap arc."""
        for idx in (0, len(ring._ring) // 2, len(ring._ring) - 1):
            point = ring._hashes[idx] + offset
            self._pin_key(monkeypatch, "probe-key", point)
            assert ring.preference_list("probe-key", 1) == [
                ring.site_for("probe-key")
            ]

    def test_preference_list_walks_clockwise_from_wrap(
        self, ring, monkeypatch
    ):
        """Past the last vnode the walk continues at ring start and still
        yields distinct sites in clockwise order."""
        self._pin_key(monkeypatch, "wrap-key", ring._hashes[-1])
        prefs = ring.preference_list("wrap-key", len(SITES))
        assert prefs[0] == ring._ring[0][1]
        assert sorted(prefs) == sorted(SITES)
