"""Shared fixtures for the test suite."""

import pytest

from repro.sim import Environment
from repro.cloud.deployment import Deployment
from repro.cloud.network import Network
from repro.cloud.presets import azure_4dc_topology, make_topology
from repro.metadata.config import MetadataConfig


@pytest.fixture
def env():
    return Environment()


@pytest.fixture
def topo():
    """The paper's 4-DC Azure topology, deterministic (no jitter)."""
    return azure_4dc_topology(jitter=False)


@pytest.fixture
def network(env, topo):
    return Network(env, topo)


@pytest.fixture
def deployment():
    """A small 8-node deployment over the 4-DC testbed."""
    return Deployment(
        topology=azure_4dc_topology(jitter=False), n_nodes=8, seed=42
    )


@pytest.fixture
def fast_config():
    """Config with tiny overheads so tests run quickly in simulated time."""
    return MetadataConfig(
        client_overhead=0.001,
        service_time=0.001,
        merge_entry_time=0.0005,
        sync_period=0.5,
        replication_flush_interval=0.05,
        read_retry_interval=0.05,
        read_retry_max_delay=0.2,
    )


def drive(env, gen, name="test"):
    """Run a generator process to completion; return its value."""
    proc = env.process(gen, name=name)
    return env.run(until=proc)
