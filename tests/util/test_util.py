"""Tests for RNG streams and unit helpers."""

import pytest

from repro.util.rng import RngStreams, derive_seed
from repro.util.units import GB, KB, MB, fmt_bytes, fmt_duration


class TestRngStreams:
    def test_same_name_same_stream(self):
        s = RngStreams(seed=1)
        assert s.get("a") is s.get("a")

    def test_independent_streams(self):
        # Drawing from stream 'b' must not disturb stream 'a': the
        # first draw of 'a' is identical whether or not 'b' was used.
        s1 = RngStreams(seed=1)
        a_only = s1.get("a").integers(10**9)
        s2 = RngStreams(seed=1)
        s2.get("b").integers(10**9)  # interleaved draw on another stream
        assert s2.get("a").integers(10**9) == a_only

    def test_reproducible_across_instances(self):
        assert (
            RngStreams(seed=5).get("x").random()
            == RngStreams(seed=5).get("x").random()
        )

    def test_different_seeds_differ(self):
        assert (
            RngStreams(seed=1).get("x").random()
            != RngStreams(seed=2).get("x").random()
        )

    def test_reset(self):
        s = RngStreams(seed=3)
        first = s.get("x").random()
        s.reset()
        assert s.get("x").random() == first

    def test_contains(self):
        s = RngStreams()
        assert "x" not in s
        s.get("x")
        assert "x" in s

    def test_derive_seed_stable(self):
        assert derive_seed(42, "network") == derive_seed(42, "network")
        assert derive_seed(42, "a") != derive_seed(42, "b")


class TestUnits:
    def test_byte_constants(self):
        assert MB == 1024 * KB
        assert GB == 1024 * MB

    def test_fmt_bytes(self):
        assert fmt_bytes(512) == "512 B"
        assert fmt_bytes(3 * MB) == "3.0 MB"
        assert fmt_bytes(2 * GB) == "2.0 GB"

    def test_fmt_duration(self):
        assert fmt_duration(0.5) == "500.0ms"
        assert fmt_duration(12.3) == "12.3s"
        assert fmt_duration(90) == "1m30.0s"
        assert fmt_duration(3725) == "1h02m05.0s"
        assert fmt_duration(-5).startswith("-")
