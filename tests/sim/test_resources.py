"""Unit tests for Resource, PriorityResource, Store, FilterStore, Container."""

import pytest

from repro.sim import (
    Container,
    Environment,
    FilterStore,
    PriorityResource,
    Resource,
    Store,
)


class TestResource:
    def test_capacity_validation(self, env):
        with pytest.raises(ValueError):
            Resource(env, capacity=0)

    def test_serializes_access(self, env):
        res = Resource(env, capacity=1)
        finish_times = []

        def user():
            with res.request() as req:
                yield req
                yield env.timeout(2)
            finish_times.append(env.now)

        for _ in range(3):
            env.process(user())
        env.run()
        assert finish_times == [2.0, 4.0, 6.0]

    def test_parallel_slots(self, env):
        res = Resource(env, capacity=3)
        finish_times = []

        def user():
            with res.request() as req:
                yield req
                yield env.timeout(2)
            finish_times.append(env.now)

        for _ in range(3):
            env.process(user())
        env.run()
        assert finish_times == [2.0, 2.0, 2.0]

    def test_release_on_exception(self, env):
        res = Resource(env, capacity=1)

        def crasher():
            with res.request() as req:
                yield req
                yield env.timeout(1)
                raise RuntimeError("dies holding the slot")

        def follower():
            with res.request() as req:
                yield req
                return env.now

        p1 = env.process(crasher())
        p2 = env.process(follower())

        def shepherd():
            try:
                yield p1
            except RuntimeError:
                pass
            got = yield p2
            return got

        # The follower acquires as soon as the crasher dies.
        assert env.run(until=env.process(shepherd())) == 1.0

    def test_queue_statistics(self, env):
        res = Resource(env, capacity=1)

        def user():
            with res.request() as req:
                yield req
                yield env.timeout(1)

        for _ in range(4):
            env.process(user())
        env.run()
        assert res.total_requests == 4
        assert res.max_queue_len == 3
        # Waits: 0 + 1 + 2 + 3 = 6 seconds.
        assert res.total_wait_time == pytest.approx(6.0)

    def test_cancel_queued_request(self, env):
        res = Resource(env, capacity=1)
        acquired = []

        def holder():
            with res.request() as req:
                yield req
                yield env.timeout(10)

        def impatient():
            req = res.request()
            result = yield req | env.timeout(1)
            if req not in result:
                req.cancel()
                acquired.append(False)
            else:
                acquired.append(True)

        env.process(holder())
        env.process(impatient())
        env.run()
        assert acquired == [False]
        assert len(res.queue) == 0


class TestPriorityResource:
    def test_priority_order(self, env):
        res = PriorityResource(env, capacity=1)
        order = []

        def user(tag, prio):
            with res.request(priority=prio) as req:
                yield req
                order.append(tag)
                yield env.timeout(1)

        def submit():
            # Occupy the resource, then enqueue contenders.
            with res.request(priority=0) as req:
                yield req
                env.process(user("low", 5))
                env.process(user("high", 1))
                env.process(user("mid", 3))
                yield env.timeout(1)

        env.process(submit())
        env.run()
        assert order == ["high", "mid", "low"]

    def test_fifo_within_priority(self, env):
        res = PriorityResource(env, capacity=1)
        order = []

        def user(tag):
            with res.request(priority=1) as req:
                yield req
                order.append(tag)
                yield env.timeout(1)

        def submit():
            with res.request(priority=0) as req:
                yield req
                for tag in "abc":
                    env.process(user(tag))
                yield env.timeout(1)

        env.process(submit())
        env.run()
        assert order == list("abc")


class TestStore:
    def test_put_get_fifo(self, env):
        store = Store(env)
        got = []

        def producer():
            for i in range(3):
                yield store.put(i)

        def consumer():
            for _ in range(3):
                item = yield store.get()
                got.append(item)

        env.process(producer())
        env.process(consumer())
        env.run()
        assert got == [0, 1, 2]

    def test_get_blocks_until_put(self, env):
        store = Store(env)

        def consumer():
            item = yield store.get()
            return (env.now, item)

        def producer():
            yield env.timeout(5)
            yield store.put("late")

        c = env.process(consumer())
        env.process(producer())
        assert env.run(until=c) == (5.0, "late")

    def test_bounded_capacity_blocks_put(self, env):
        store = Store(env, capacity=1)
        times = []

        def producer():
            for i in range(2):
                yield store.put(i)
                times.append(env.now)

        def consumer():
            yield env.timeout(3)
            yield store.get()

        env.process(producer())
        env.process(consumer())
        env.run()
        assert times == [0.0, 3.0]

    def test_invalid_capacity(self, env):
        with pytest.raises(ValueError):
            Store(env, capacity=0)


class TestFilterStore:
    def test_filter_selects_matching(self, env):
        store = FilterStore(env)
        got = []

        def producer():
            for item in ("apple", "banana", "cherry"):
                yield store.put(item)

        def consumer():
            item = yield store.get(lambda x: x.startswith("b"))
            got.append(item)

        env.process(producer())
        env.process(consumer())
        env.run()
        assert got == ["banana"]
        assert store.items == ["apple", "cherry"]

    def test_later_getter_can_match_first(self, env):
        store = FilterStore(env)
        got = []

        def want(prefix):
            item = yield store.get(lambda x, p=prefix: x.startswith(p))
            got.append(item)

        env.process(want("z"))  # never satisfied first in queue
        env.process(want("a"))

        def producer():
            yield store.put("avocado")

        env.process(producer())
        env.run(until=2)
        assert got == ["avocado"]


class TestContainer:
    def test_levels(self, env):
        c = Container(env, capacity=10, init=5)

        def ops():
            yield c.get(3)
            assert c.level == 2
            yield c.put(8)
            assert c.level == 10

        env.run(until=env.process(ops()))

    def test_get_blocks_until_available(self, env):
        c = Container(env, capacity=10, init=0)

        def consumer():
            yield c.get(4)
            return env.now

        def producer():
            yield env.timeout(2)
            yield c.put(4)

        p = env.process(consumer())
        env.process(producer())
        assert env.run(until=p) == 2.0

    def test_put_blocks_at_capacity(self, env):
        c = Container(env, capacity=5, init=5)

        def producer():
            yield c.put(1)
            return env.now

        def consumer():
            yield env.timeout(3)
            yield c.get(2)

        p = env.process(producer())
        env.process(consumer())
        assert env.run(until=p) == 3.0

    def test_validation(self, env):
        with pytest.raises(ValueError):
            Container(env, capacity=0)
        with pytest.raises(ValueError):
            Container(env, capacity=5, init=9)
        c = Container(env, capacity=5)
        with pytest.raises(ValueError):
            c.put(0)
        with pytest.raises(ValueError):
            c.get(-1)
