"""Property-based tests for the DES kernel (hypothesis)."""

import heapq

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import AllOf, AnyOf, Environment, Resource


@given(
    delays=st.lists(
        st.floats(min_value=0.0, max_value=1e5, allow_nan=False),
        min_size=1,
        max_size=50,
    )
)
def test_completion_times_monotonic(delays):
    """Process completion order always matches scheduled-delay order."""
    env = Environment()
    finished = []

    def proc(d):
        yield env.timeout(d)
        finished.append(env.now)

    for d in delays:
        env.process(proc(d))
    env.run()
    assert finished == sorted(finished)
    assert len(finished) == len(delays)
    assert env.now == max(delays)


@given(
    delays=st.lists(
        st.floats(min_value=0.0, max_value=100, allow_nan=False),
        min_size=1,
        max_size=30,
    )
)
def test_all_of_equals_max_any_of_equals_min(delays):
    env = Environment()

    def wait_all():
        yield AllOf(env, [env.timeout(d) for d in delays])
        return env.now

    assert env.run(until=env.process(wait_all())) == max(delays)

    env2 = Environment()

    def wait_any():
        yield AnyOf(env2, [env2.timeout(d) for d in delays])
        return env2.now

    assert env2.run(until=env2.process(wait_any())) == min(delays)


@given(
    service_times=st.lists(
        st.floats(min_value=0.01, max_value=10, allow_nan=False),
        min_size=1,
        max_size=20,
    ),
    capacity=st.integers(min_value=1, max_value=4),
)
@settings(max_examples=50)
def test_resource_conservation(service_times, capacity):
    """A bounded resource never exceeds its capacity and serves everyone."""
    env = Environment()
    res = Resource(env, capacity=capacity)
    in_service = [0]
    max_in_service = [0]
    served = [0]

    def user(d):
        with res.request() as req:
            yield req
            in_service[0] += 1
            max_in_service[0] = max(max_in_service[0], in_service[0])
            yield env.timeout(d)
            in_service[0] -= 1
        served[0] += 1

    for d in service_times:
        env.process(user(d))
    env.run()
    assert max_in_service[0] <= capacity
    assert served[0] == len(service_times)
    # Makespan bounds: at least the longest job, at most the serial sum.
    assert max(service_times) <= env.now <= sum(service_times) + 1e-9


@given(
    seed_events=st.lists(
        st.tuples(
            st.floats(min_value=0, max_value=50, allow_nan=False),
            st.integers(min_value=0, max_value=5),
        ),
        min_size=1,
        max_size=40,
    )
)
def test_event_loop_matches_reference_heap(seed_events):
    """The kernel processes events in exactly heap-sorted order."""
    env = Environment()
    observed = []

    def proc(delay, tag):
        yield env.timeout(delay)
        observed.append((env.now, tag))

    expected_heap = []
    for i, (delay, _extra) in enumerate(seed_events):
        env.process(proc(delay, i))
        heapq.heappush(expected_heap, (delay, i))
    env.run()
    expected = []
    while expected_heap:
        d, i = heapq.heappop(expected_heap)
        expected.append((d, i))
    assert observed == expected
