"""Calendar-backend equivalence and dead-entry compaction.

The ``Environment`` can run its calendar on a binary heap (default) or a
bucketed calendar queue (``queue="bucket"``).  The contract is that the
two are *indistinguishable*: identical pop order -- including
same-timestamp priority and insertion-order ties -- and therefore
identical simulations.  These tests drive both backends through the same
schedules (plus cancel/reschedule churn) and require identical traces.

Compaction: lazy deletion leaves dead entries in the calendar; the
kernel compacts whenever more than half of a non-trivial queue is dead,
so rebalance-style churn (the flow solver reschedules every affected
completion on every perturbation) cannot grow the calendar without
bound.
"""

import random

import pytest

from repro.sim import Environment, EventPriority
from repro.sim.core import _COMPACT_MIN, BucketQueue


def _trace_of(env, n_events, plan):
    """Run ``plan(env, log)`` and return the (time, tag) pop trace."""
    log = []
    plan(env, log)
    env.run()
    assert len(log) == n_events
    return log


class TestPopOrderEquivalence:
    @pytest.mark.parametrize("width", [0.1, 1.0, 7.3])
    def test_same_trace_on_random_schedule(self, width):
        """Heap and bucket backends pop an identical event order."""

        def plan(env, log):
            rng = random.Random(42)
            for i in range(500):
                delay = rng.choice([0.0, 0.25, 1.0, rng.random() * 20])
                ev = env.timeout(delay, value=i)
                ev.callbacks.append(
                    lambda e, i=i: log.append((e.env.now, i))
                )

        heap_trace = _trace_of(Environment(), 500, plan)
        bucket_trace = _trace_of(
            Environment(queue="bucket", bucket_width=width), 500, plan
        )
        assert heap_trace == bucket_trace

    def test_priority_ties_at_same_timestamp(self):
        """URGENT < NORMAL < LOW at one instant, insertion order within."""

        def plan(env, log):
            prios = [
                EventPriority.LOW,
                EventPriority.NORMAL,
                EventPriority.URGENT,
                EventPriority.NORMAL,
                EventPriority.URGENT,
                EventPriority.LOW,
            ]
            for i, prio in enumerate(prios):
                ev = env.event()
                ev._ok = True
                ev._value = i
                ev.callbacks.append(
                    lambda e: log.append((e.env.now, e._value))
                )
                env._schedule(ev, prio, 1.0)

        heap_trace = _trace_of(Environment(), 6, plan)
        bucket_trace = _trace_of(Environment(queue="bucket"), 6, plan)
        assert heap_trace == bucket_trace
        # URGENT pair first (insertion order), then NORMAL, then LOW.
        assert [tag for _, tag in heap_trace] == [2, 4, 1, 3, 0, 5]

    def test_trace_stable_under_cancel_and_reschedule_churn(self):
        """Backends agree after interleaved cancels and reschedules."""

        def plan(env, log):
            rng = random.Random(7)
            events = []
            for i in range(300):
                ev = env.timeout(rng.random() * 10, value=i)
                ev.callbacks.append(
                    lambda e: log.append((e.env.now, e._value))
                )
                events.append(ev)
            for i in range(0, 300, 3):
                env.cancel(events[i])
            for i in range(1, 300, 3):
                env.reschedule(events[i], rng.random() * 5)

        def run(env):
            log = []
            plan(env, log)
            env.run()
            return log

        heap_trace = run(Environment())
        bucket_trace = run(Environment(queue="bucket", bucket_width=0.5))
        assert heap_trace == bucket_trace
        assert len(heap_trace) == 200

    def test_nonfinite_times_go_to_overflow(self):
        """A bucket queue accepts inf-delay entries without dying."""
        env = Environment(queue="bucket")
        never = env.timeout(float("inf"), value="never")
        soon = env.timeout(1.0, value="soon")
        fired = []
        soon.callbacks.append(lambda e: fired.append(e._value))
        env.run(until=10.0)
        assert fired == ["soon"]
        assert not never.processed
        assert env.queued == 1  # the inf entry is still held

    def test_backend_property_reports(self):
        assert Environment().queue_backend == "heap"
        assert Environment(queue="bucket").queue_backend == "bucket"
        with pytest.raises(ValueError):
            Environment(queue="calendar-wheel")


class TestBucketQueueUnit:
    def test_pop_orders_across_buckets(self):
        q = BucketQueue(width=1.0)
        entries = [
            [5.0, 1, 0, "a"],
            [0.5, 1, 1, "b"],
            [0.6, 0, 2, "c"],
            [5.0, 0, 3, "d"],
            [2.2, 1, 4, "e"],
        ]
        for e in entries:
            q.push(e)
        assert [q.pop()[3] for _ in range(len(q))] == [
            "b", "c", "e", "d", "a",
        ]

    def test_peek_does_not_consume(self):
        q = BucketQueue(width=2.0)
        q.push([3.0, 1, 0, "x"])
        assert q.peek_entry()[3] == "x"
        assert len(q) == 1

    def test_compact_drops_dead_entries(self):
        q = BucketQueue(width=1.0)
        live = [1.0, 1, 0, "keep"]
        dead = [2.0, 1, 1, None]
        q.push(live)
        q.push(dead)
        q.compact()
        assert len(q) == 1
        assert q.pop() is live


class TestCompaction:
    @pytest.mark.parametrize("backend", ["heap", "bucket"])
    def test_reschedule_churn_keeps_queue_bounded(self, backend):
        """S3: heavy reschedule churn cannot grow the calendar unboundedly.

        Every reschedule lazily kills one entry and pushes a fresh one;
        without compaction N reschedules leave N dead entries behind.
        The 50%-dead threshold bounds the calendar at O(live).
        """
        env = Environment(queue=backend)
        live = 64
        events = [env.timeout(1000.0 + i) for i in range(live)]
        for round_ in range(100):
            for ev in events:
                env.reschedule(ev, 1000.0 + round_)
        # 6400 reschedules happened; the queue must stay O(live), far
        # below the dead-entry pile lazy deletion alone would leave.
        assert env.queued <= 2 * live + 1
        assert env._dead * 2 <= env.queued + 1

    def test_no_compaction_below_minimum(self):
        """Tiny calendars skip compaction (not worth the heapify)."""
        env = Environment()
        ev = env.timeout(5.0)
        other = env.timeout(7.0)
        env.cancel(ev)
        # One dead of two entries: over 50% threshold but under the
        # size floor, so the dead entry is still in the queue.
        assert env.queued == 2
        assert _COMPACT_MIN > 2
        assert not other.processed

    def test_compaction_preserves_pop_order(self):
        env = Environment()
        keep = []
        events = []
        for i in range(_COMPACT_MIN * 2):
            ev = env.timeout(float(i), value=i)
            ev.callbacks.append(lambda e: keep.append(e._value))
            events.append(ev)
        # Cancel every other event to push past the 50% dead mark.
        for ev in events[::2]:
            env.cancel(ev)
        env.run()
        assert keep == list(range(1, _COMPACT_MIN * 2, 2))
