"""Unit tests for the DES kernel: events, processes, ordering, conditions."""

import pytest

from repro.sim import (
    AllOf,
    AnyOf,
    Environment,
    Event,
    Interrupt,
    SimulationError,
    Timeout,
)


class TestClock:
    def test_starts_at_zero(self, env):
        assert env.now == 0.0

    def test_custom_initial_time(self):
        assert Environment(initial_time=5.0).now == 5.0

    def test_timeout_advances_clock(self, env):
        env.process(self._wait(env, 3.5))
        env.run()
        assert env.now == 3.5

    @staticmethod
    def _wait(env, delay):
        yield env.timeout(delay)

    def test_run_until_time_stops_early(self, env):
        env.process(self._wait(env, 10.0))
        env.run(until=4.0)
        assert env.now == 4.0

    def test_run_until_past_raises(self, env):
        env.process(self._wait(env, 1.0))
        env.run()
        with pytest.raises(ValueError):
            env.run(until=0.5)

    def test_negative_delay_rejected(self, env):
        with pytest.raises(ValueError):
            env.timeout(-1)

    def test_peek_empty_queue_is_inf(self, env):
        assert env.peek() == float("inf")

    def test_step_without_events_raises(self, env):
        with pytest.raises(SimulationError):
            env.step()


class TestEvents:
    def test_succeed_delivers_value(self, env):
        ev = env.event()
        results = []

        def waiter():
            results.append((yield ev))

        env.process(waiter())
        ev.succeed("payload")
        env.run()
        assert results == ["payload"]

    def test_double_trigger_raises(self, env):
        ev = env.event()
        ev.succeed(1)
        with pytest.raises(SimulationError):
            ev.succeed(2)

    def test_fail_throws_into_waiter(self, env):
        ev = env.event()
        caught = []

        def waiter():
            try:
                yield ev
            except RuntimeError as exc:
                caught.append(str(exc))

        env.process(waiter())
        ev.fail(RuntimeError("boom"))
        env.run()
        assert caught == ["boom"]

    def test_fail_with_non_exception_raises(self, env):
        with pytest.raises(TypeError):
            env.event().fail("not an exception")

    def test_unhandled_failure_surfaces(self, env):
        ev = env.event()
        ev.fail(RuntimeError("lost"))
        with pytest.raises(RuntimeError, match="lost"):
            env.run()

    def test_value_before_trigger_raises(self, env):
        with pytest.raises(SimulationError):
            env.event().value

    def test_ok_before_trigger_raises(self, env):
        with pytest.raises(SimulationError):
            env.event().ok


class TestOrdering:
    def test_simultaneous_events_fifo(self, env):
        """Events scheduled for the same instant fire in schedule order."""
        order = []

        def proc(tag):
            yield env.timeout(1.0)
            order.append(tag)

        for tag in ("a", "b", "c"):
            env.process(proc(tag))
        env.run()
        assert order == ["a", "b", "c"]

    def test_earlier_timeouts_first(self, env):
        order = []

        def proc(tag, delay):
            yield env.timeout(delay)
            order.append(tag)

        env.process(proc("late", 2.0))
        env.process(proc("early", 1.0))
        env.run()
        assert order == ["early", "late"]

    def test_determinism_across_runs(self):
        def run_once():
            env = Environment()
            trace = []

            def worker(i):
                for k in range(3):
                    yield env.timeout(0.5 * (i + 1))
                    trace.append((env.now, i, k))

            for i in range(4):
                env.process(worker(i))
            env.run()
            return trace

        assert run_once() == run_once()


class TestProcesses:
    def test_return_value(self, env):
        def compute():
            yield env.timeout(1)
            return 42

        proc = env.process(compute())
        assert env.run(until=proc) == 42

    def test_process_waits_on_process(self, env):
        def inner():
            yield env.timeout(2)
            return "inner-done"

        def outer():
            result = yield env.process(inner())
            return result

        assert env.run(until=env.process(outer())) == "inner-done"

    def test_crashing_process_fails_waiters(self, env):
        def bad():
            yield env.timeout(1)
            raise ValueError("crash")

        def waiter():
            yield env.process(bad())

        with pytest.raises(ValueError, match="crash"):
            env.run(until=env.process(waiter()))

    def test_yield_non_event_raises(self, env):
        def bad():
            yield "not an event"

        env.process(bad())
        with pytest.raises(SimulationError, match="non-event"):
            env.run()

    def test_is_alive_lifecycle(self, env):
        def worker():
            yield env.timeout(5)

        proc = env.process(worker())
        assert proc.is_alive
        env.run()
        assert not proc.is_alive

    def test_yield_already_processed_event_resumes(self, env):
        ev = env.event()
        ev.succeed("early")
        env.run()  # process the event with no waiters

        def late_waiter():
            value = yield ev
            return value

        assert env.run(until=env.process(late_waiter())) == "early"


class TestInterrupts:
    def test_interrupt_delivers_cause(self, env):
        causes = []

        def victim():
            try:
                yield env.timeout(100)
            except Interrupt as i:
                causes.append((env.now, i.cause))

        v = env.process(victim())

        def attacker():
            yield env.timeout(1)
            v.interrupt(cause="preempted")

        env.process(attacker())
        env.run(until=v)
        # The interrupt arrived at t=1, not when the timeout would fire.
        assert causes == [(1.0, "preempted")]

    def test_interrupted_process_can_continue(self, env):
        log = []

        def victim():
            try:
                yield env.timeout(100)
            except Interrupt:
                log.append(("interrupted", env.now))
            yield env.timeout(1)
            log.append(("recovered", env.now))

        v = env.process(victim())

        def attacker():
            yield env.timeout(2)
            v.interrupt()

        env.process(attacker())
        env.run(until=v)
        assert log == [("interrupted", 2.0), ("recovered", 3.0)]

    def test_interrupt_dead_process_raises(self, env):
        def quick():
            yield env.timeout(1)

        p = env.process(quick())
        env.run()
        with pytest.raises(SimulationError):
            p.interrupt()


class TestConditions:
    def test_all_of_waits_for_all(self, env):
        def waiter():
            yield AllOf(env, [env.timeout(1), env.timeout(5), env.timeout(3)])
            return env.now

        assert env.run(until=env.process(waiter())) == 5.0

    def test_any_of_fires_on_first(self, env):
        def waiter():
            yield AnyOf(env, [env.timeout(7), env.timeout(2)])
            return env.now

        assert env.run(until=env.process(waiter())) == 2.0

    def test_operator_composition(self, env):
        def waiter():
            yield (env.timeout(1) & env.timeout(4)) | env.timeout(10)
            return env.now

        assert env.run(until=env.process(waiter())) == 4.0

    def test_empty_all_of_fires_immediately(self, env):
        def waiter():
            yield AllOf(env, [])
            return env.now

        assert env.run(until=env.process(waiter())) == 0.0

    def test_all_of_fails_fast(self, env):
        bad = env.event()

        def failer():
            yield env.timeout(1)
            bad.fail(RuntimeError("member failed"))

        def waiter():
            yield AllOf(env, [bad, env.timeout(100)])

        env.process(failer())
        with pytest.raises(RuntimeError, match="member failed"):
            env.run(until=env.process(waiter()))
        assert env.now == 1.0

    def test_deadlock_detected(self, env):
        never = env.event()

        def waiter():
            yield never

        proc = env.process(waiter())
        with pytest.raises(SimulationError, match="deadlock"):
            env.run(until=proc)
