"""Edge-case tests for the DES kernel's less-travelled paths."""

import pytest

from repro.sim import (
    AllOf,
    AnyOf,
    Environment,
    Event,
    SimulationError,
    Store,
)


class TestConditionValues:
    def test_all_of_value_maps_events(self, env):
        t1 = env.timeout(1, value="one")
        t2 = env.timeout(2, value="two")

        def waiter():
            result = yield AllOf(env, [t1, t2])
            return result

        result = env.run(until=env.process(waiter()))
        assert result[t1] == "one"
        assert result[t2] == "two"

    def test_any_of_value_contains_winner(self, env):
        fast = env.timeout(1, value="fast")
        slow = env.timeout(10, value="slow")

        def waiter():
            result = yield AnyOf(env, [fast, slow])
            return result

        result = env.run(until=env.process(waiter()))
        assert result == {fast: "fast"}

    def test_condition_over_processed_events(self, env):
        ev = env.timeout(1, value=7)
        env.run(until=2)  # the timeout is long processed

        def waiter():
            result = yield AllOf(env, [ev])
            return result

        assert env.run(until=env.process(waiter()))[ev] == 7


class TestEventTrigger:
    def test_trigger_copies_success(self, env):
        src, dst = env.event(), env.event()
        src.succeed("payload")
        env.run()
        dst.trigger(src)
        assert dst.triggered and dst.ok
        assert dst.value == "payload"

    def test_trigger_copies_failure(self, env):
        src, dst = env.event(), env.event()
        src.fail(RuntimeError("x"))
        src.defused = True
        env.run()
        dst.trigger(src)
        assert dst.triggered and not dst.ok
        dst.defused = True
        env.run()


class TestRunSemantics:
    def test_run_until_event_returns_value(self, env):
        ev = env.timeout(3, value="done")
        assert env.run(until=ev) == "done"
        assert env.now == 3

    def test_run_until_already_processed_event(self, env):
        ev = env.timeout(1, value=42)
        env.run()
        assert env.run(until=ev) == 42

    def test_run_until_failed_event_raises(self, env):
        ev = env.event()

        def failer():
            yield env.timeout(1)
            ev.fail(ValueError("boom"))

        env.process(failer())
        with pytest.raises(ValueError, match="boom"):
            env.run(until=ev)

    def test_run_to_time_with_empty_queue(self, env):
        env.run(until=5.0)
        assert env.now == 5.0

    def test_nested_process_chain_depth(self, env):
        """Deep chains of processes waiting on processes resolve."""

        def layer(depth):
            if depth == 0:
                yield env.timeout(1)
                return 0
            result = yield env.process(layer(depth - 1))
            return result + 1

        assert env.run(until=env.process(layer(50))) == 50
        assert env.now == 1.0


class TestStoreEdgeCases:
    def test_many_producers_one_consumer(self, env):
        store = Store(env)
        got = []

        def producer(i):
            yield env.timeout(i * 0.1)
            yield store.put(i)

        def consumer():
            for _ in range(5):
                item = yield store.get()
                got.append(item)

        for i in range(5):
            env.process(producer(i))
        env.process(consumer())
        env.run()
        assert got == [0, 1, 2, 3, 4]

    def test_get_cancel_is_idempotent(self, env):
        store = Store(env)
        ev = store.get()
        ev.cancel()
        ev.cancel()
        assert len(store._get_queue) == 0
