"""Tests for the preemptive priority resource."""

import pytest

from repro.sim import (
    Environment,
    Interrupt,
    Preempted,
    PreemptivePriorityResource,
)


class TestPreemption:
    def test_urgent_request_evicts_low_priority_holder(self, env):
        res = PreemptivePriorityResource(env, capacity=1)
        log = []

        def background():
            with res.request(priority=5) as req:
                yield req
                log.append(("bg-start", env.now))
                try:
                    yield env.timeout(100)
                    log.append(("bg-finished", env.now))
                except Interrupt as i:
                    assert isinstance(i.cause, Preempted)
                    log.append(("bg-preempted", env.now))
                    assert i.cause.usage_since == 0.0

        def urgent():
            yield env.timeout(2)
            with res.request(priority=0) as req:
                yield req
                log.append(("urgent-start", env.now))
                yield env.timeout(1)
            log.append(("urgent-done", env.now))

        bg = env.process(background())
        env.process(urgent())
        env.run(until=bg)
        env.run(until=10)
        assert ("bg-preempted", 2.0) in log
        assert ("urgent-start", 2.0) in log
        assert ("urgent-done", 3.0) in log

    def test_non_preempt_request_waits(self, env):
        res = PreemptivePriorityResource(env, capacity=1)
        order = []

        def holder():
            with res.request(priority=5) as req:
                yield req
                yield env.timeout(4)
                order.append(("holder-done", env.now))

        def polite():
            yield env.timeout(1)
            with res.request(priority=0, preempt=False) as req:
                yield req
                order.append(("polite-start", env.now))

        env.process(holder())
        env.process(polite())
        env.run()
        assert order == [("holder-done", 4.0), ("polite-start", 4.0)]

    def test_equal_priority_never_preempts(self, env):
        res = PreemptivePriorityResource(env, capacity=1)
        preempted = []

        def holder():
            with res.request(priority=3) as req:
                yield req
                try:
                    yield env.timeout(5)
                except Interrupt:
                    preempted.append(True)

        def peer():
            yield env.timeout(1)
            with res.request(priority=3) as req:
                yield req

        env.process(holder())
        env.process(peer())
        env.run()
        assert preempted == []

    def test_victim_can_rerequest(self, env):
        res = PreemptivePriorityResource(env, capacity=1)
        finished = []

        def persistent():
            remaining = 6.0
            while remaining > 0:
                with res.request(priority=5) as req:
                    yield req
                    start = env.now
                    try:
                        yield env.timeout(remaining)
                        remaining = 0.0
                    except Interrupt:
                        remaining -= env.now - start
            finished.append(env.now)

        def vip():
            yield env.timeout(2)
            with res.request(priority=0) as req:
                yield req
                yield env.timeout(3)

        env.process(persistent())
        env.process(vip())
        env.run()
        # 2 s of work, 3 s preempted, then the remaining 4 s.
        assert finished == [9.0]

    def test_multi_slot_evicts_worst(self, env):
        res = PreemptivePriorityResource(env, capacity=2)
        evicted = []

        def holder(tag, prio):
            with res.request(priority=prio) as req:
                yield req
                try:
                    yield env.timeout(50)
                except Interrupt:
                    evicted.append(tag)

        def vip():
            yield env.timeout(1)
            with res.request(priority=0) as req:
                yield req

        env.process(holder("mid", 3))
        env.process(holder("low", 7))
        env.process(vip())
        env.run(until=2)
        assert evicted == ["low"]
