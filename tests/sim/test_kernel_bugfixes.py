"""Regression tests for kernel bugs found during the profiling sweep.

Each test pins a behavior that used to be wrong:

- ``Environment.run(until=event)`` on an *already-processed failed*
  event returned the exception object instead of raising it (the
  during-run path raised; the early-return path leaked the exception as
  a value).
- ``Event.trigger`` on a not-yet-triggered source forwarded the internal
  ``_PENDING`` sentinel into ``fail`` and surfaced as a baffling
  ``TypeError``; it now raises a clear :class:`SimulationError`.

Plus the cancel/reschedule/interrupt races the lazy-deletion calendar
has to get right.
"""

import pytest

from repro.sim import (
    Environment,
    Event,
    Interrupt,
    SimulationError,
)


class Boom(Exception):
    pass


class TestRunUntilProcessedFailure:
    def _processed_failed_event(self, env):
        """A failed event that has been processed (and defused)."""
        ev = env.event()
        ev.fail(Boom("kaboom"))

        def waiter():
            try:
                yield ev
            except Boom:
                pass  # delivered: the failure is defused

        env.process(waiter())
        env.run(until=2.0)
        assert ev.processed and not ev.ok
        return ev

    def test_raises_instead_of_returning_exception(self, env):
        """S1: the early-return path must raise like the in-run path."""
        ev = self._processed_failed_event(env)
        with pytest.raises(Boom, match="kaboom"):
            env.run(until=ev)

    def test_processed_success_still_returns_value(self, env):
        ev = env.event()
        ev.succeed("payload")
        env.run(until=1.0)
        assert ev.processed
        assert env.run(until=ev) == "payload"

    def test_failure_during_run_still_raises(self, env):
        ev = env.event()

        def failer():
            yield env.timeout(1.0)
            ev.fail(Boom("late"))

        env.process(failer())
        with pytest.raises(Boom, match="late"):
            env.run(until=ev)


class TestTriggerPendingSource:
    def test_trigger_from_pending_source_raises_clearly(self, env):
        """S2: forwarding a pending event is an error, not a TypeError."""
        src = env.event()
        dst = env.event()
        with pytest.raises(SimulationError, match="not been .*triggered"):
            dst.trigger(src)
        # Neither event changed state.
        assert not src.triggered and not dst.triggered

    def test_trigger_forwards_success_and_failure(self, env):
        ok_src = env.event().succeed(5)
        ok_dst = env.event()
        ok_dst.trigger(ok_src)
        assert ok_dst.triggered and ok_dst._ok

        bad_src = env.event().fail(Boom())
        bad_dst = env.event()
        bad_dst.trigger(bad_src)
        assert bad_dst.triggered and not bad_dst._ok
        # Defuse both failures so run() doesn't surface them.
        bad_src.defused = True
        bad_dst.defused = True
        env.run()


class TestCancelTriggerRaces:
    def test_cancel_then_trigger(self, env):
        """A withdrawn event can be re-armed: cancel only unschedules."""
        ev = env.event()
        ev.succeed("first")
        env.cancel(ev)
        # The value stuck at trigger time; re-triggering is an error.
        with pytest.raises(SimulationError, match="already triggered"):
            ev.succeed("second")
        env.run()
        assert not ev.processed  # the cancelled entry never fired

    def test_cancelled_timeout_never_fires_waiter_deadlocks(self, env):
        ev = env.timeout(1.0)
        env.cancel(ev)

        def waiter():
            yield ev

        proc = env.process(waiter())
        with pytest.raises(SimulationError, match="deadlock"):
            env.run(until=proc)

    def test_reschedule_then_cancel(self, env):
        """The re-keyed entry (not a stale one) is what cancel kills."""
        fired = []
        ev = env.timeout(1.0, value="x")
        ev.callbacks.append(lambda e: fired.append(e._value))
        env.reschedule(ev, 5.0)
        env.cancel(ev)
        env.run(until=10.0)
        assert fired == []
        assert env.queued == 0  # both the stale and the live entry purged

    def test_cancel_twice_raises(self, env):
        ev = env.timeout(1.0)
        env.cancel(ev)
        with pytest.raises(SimulationError, match="not scheduled"):
            env.cancel(ev)

    def test_reschedule_processed_event_raises(self, env):
        ev = env.timeout(1.0)
        env.run(until=2.0)
        assert ev.processed
        with pytest.raises(SimulationError, match="not scheduled"):
            env.reschedule(ev, 1.0)


class TestInterruptRaces:
    def test_interrupt_beats_already_triggered_target(self, env):
        """Interrupting a process whose wait target already fired.

        The timeout is scheduled (triggered) for the same instant the
        interrupt lands; the URGENT interrupt must win and the stale
        timeout must NOT resume the process afterwards.
        """
        log = []

        def sleeper():
            try:
                yield env.timeout(1.0, value="slept")
                log.append("slept")
            except Interrupt as intr:
                log.append(("interrupted", intr.cause))
                # Keep living past the timeout instant to prove the old
                # target does not resume us a second time.
                yield env.timeout(5.0)
                log.append("resumed-later")

        def interrupter():
            yield env.timeout(1.0)
            proc.interrupt(cause="race")

        # Created first, so the interrupter's t=1.0 timeout pops before
        # the sleeper's: the interrupt lands while the sleeper's own
        # timeout is already triggered and sitting in the calendar.
        env.process(interrupter())
        proc = env.process(sleeper())
        env.run()
        assert log == [("interrupted", "race"), "resumed-later"]

    def test_interrupt_detaches_from_old_target(self, env):
        """The interrupted process's old target fires without effect."""
        target = env.timeout(3.0, value="late")

        def sleeper():
            try:
                yield target
            except Interrupt:
                return "out"

        proc = env.process(sleeper())

        def interrupter():
            yield env.timeout(1.0)
            proc.interrupt()

        env.process(interrupter())
        assert env.run(until=proc) == "out"
        env.run()
        assert target.processed  # fired later, resuming nobody
