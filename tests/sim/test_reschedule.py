"""Kernel calendar: lazy deletion, re-keying and __slots__ contracts."""

import pytest

from repro.sim import Environment, Event, EventPriority, Process, SimulationError, Timeout


class TestReschedule:
    def test_reschedule_later(self):
        env = Environment()
        t = env.timeout(1.0, value="late")
        fired = []
        t.callbacks.append(lambda ev: fired.append(env.now))
        env.reschedule(t, 5.0)
        env.run()
        assert fired == [5.0]

    def test_reschedule_earlier(self):
        env = Environment()
        t = env.timeout(10.0)
        fired = []
        t.callbacks.append(lambda ev: fired.append(env.now))
        env.reschedule(t, 0.5)
        env.run()
        assert fired == [0.5]
        assert env.now == 0.5  # the stale 10.0 entry never advances time

    def test_reschedule_repeatedly(self):
        env = Environment()
        t = env.timeout(1.0)
        fired = []
        t.callbacks.append(lambda ev: fired.append(env.now))
        for delay in (9.0, 4.0, 2.5):
            env.reschedule(t, delay)
        env.run()
        assert fired == [2.5]

    def test_reschedule_fires_event_once(self):
        env = Environment()
        t = env.timeout(1.0)
        fired = []
        t.callbacks.append(lambda ev: fired.append(env.now))
        env.reschedule(t, 2.0)
        env.run()
        assert len(fired) == 1

    def test_reschedule_processed_event_raises(self):
        env = Environment()
        t = env.timeout(1.0)
        env.run()
        with pytest.raises(SimulationError, match="cannot reschedule"):
            env.reschedule(t, 1.0)

    def test_reschedule_unscheduled_event_raises(self):
        env = Environment()
        ev = env.event()  # pending, never scheduled
        with pytest.raises(SimulationError, match="cannot reschedule"):
            env.reschedule(ev, 1.0)

    def test_reschedule_negative_delay_raises(self):
        env = Environment()
        t = env.timeout(1.0)
        with pytest.raises(ValueError, match="Negative delay"):
            env.reschedule(t, -1.0)

    def test_process_waiting_on_rescheduled_timeout(self):
        env = Environment()
        t = env.timeout(100.0, value="v")

        def waiter():
            got = yield t
            return (env.now, got)

        proc = env.process(waiter())
        env.reschedule(t, 2.0)
        assert env.run(until=proc) == (2.0, "v")

    def test_priority_respected_after_reschedule(self):
        env = Environment()
        order = []
        urgent = env.timeout(5.0, value="urgent")
        normal = env.timeout(1.0, value="normal")
        urgent.callbacks.append(lambda ev: order.append(ev.value))
        normal.callbacks.append(lambda ev: order.append(ev.value))
        # Move 'urgent' to the same instant as 'normal' with URGENT prio.
        env.reschedule(urgent, 1.0, priority=EventPriority.URGENT)
        env.run()
        assert order == ["urgent", "normal"]


    def test_reschedule_without_priority_preserves_it(self):
        env = Environment()
        order = []
        a = env.timeout(5.0, value="a")
        b = env.timeout(1.0, value="b")
        a.callbacks.append(lambda ev: order.append(ev.value))
        b.callbacks.append(lambda ev: order.append(ev.value))
        env.reschedule(a, 2.0, priority=EventPriority.URGENT)
        env.reschedule(a, 1.0)  # no priority given: URGENT sticks
        env.run()
        assert order == ["a", "b"]


class TestCancel:
    def test_cancelled_timeout_never_fires(self):
        env = Environment()
        t = env.timeout(1.0)
        fired = []
        t.callbacks.append(lambda ev: fired.append(env.now))
        env.cancel(t)
        env.run()  # terminates: the dead entry is purged
        assert fired == []
        assert not t.processed

    def test_cancel_processed_event_raises(self):
        env = Environment()
        t = env.timeout(1.0)
        env.run()
        with pytest.raises(SimulationError, match="cannot cancel"):
            env.cancel(t)

    def test_cancel_then_reschedule_raises(self):
        env = Environment()
        t = env.timeout(1.0)
        env.cancel(t)
        with pytest.raises(SimulationError, match="cannot reschedule"):
            env.reschedule(t, 2.0)


class TestLazyDeletion:
    def test_peek_skips_dead_entries(self):
        env = Environment()
        t = env.timeout(1.0)
        env.reschedule(t, 3.0)
        assert env.peek() == 3.0  # the stale 1.0 entry is invisible

    def test_run_until_time_ignores_dead_entries(self):
        env = Environment()
        t = env.timeout(1.0)
        env.reschedule(t, 10.0)
        env.run(until=2.0)
        assert env.now == 2.0
        assert not t.processed

    def test_queue_drains_despite_dead_tail(self):
        env = Environment()
        t = env.timeout(5.0)
        fired = []
        t.callbacks.append(lambda ev: fired.append(env.now))
        env.reschedule(t, 1.0)
        env.run()  # must terminate: the dead 5.0 entry is purged
        assert fired == [1.0]

    def test_step_processes_live_event_after_dead_ones(self):
        env = Environment()
        t = env.timeout(1.0)
        env.reschedule(t, 2.0)
        env.reschedule(t, 3.0)
        env.step()  # skips two dead entries, processes the live one
        assert env.now == 3.0
        assert t.processed


class TestSlotsDeclarations:
    """Hot-path kernel objects must not carry per-instance dicts."""

    @pytest.mark.parametrize("cls", [Event, Timeout, Process])
    def test_no_instance_dict(self, cls):
        assert "__slots__" in vars(cls)

    def test_event_instances_have_no_dict(self):
        env = Environment()
        with pytest.raises(AttributeError):
            env.event().arbitrary = 1
        with pytest.raises(AttributeError):
            env.timeout(1.0).arbitrary = 1

    def test_subclasses_can_still_extend(self):
        # Resource requests etc. subclass Event without __slots__ and
        # rely on getting a __dict__ back.
        class Custom(Event):
            pass

        env = Environment()
        ev = Custom(env)
        ev.arbitrary = 1
        assert ev.arbitrary == 1
