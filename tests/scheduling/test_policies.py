"""Unit and property tests for the placement policies."""

import pytest

from repro.cloud.deployment import Deployment
from repro.cloud.presets import (
    azure_4dc_topology,
    heterogeneous_fanout_topology,
)
from repro.scheduling import (
    ClusterView,
    LocalityPolicy,
    PlacementPolicy,
    RoundRobinPolicy,
    SCHEDULERS,
    SCHEDULER_NAMES,
    make_scheduler,
)
from repro.storage.transfer import TransferService
from repro.storage.filestore import StoredFile
from repro.util.units import MB
from repro.workflow.dag import Task, Workflow, WorkflowFile


def make_cluster(topology=None, n_nodes=8, seed=0, bandwidth_model="slots"):
    dep = Deployment(
        topology=topology or azure_4dc_topology(jitter=False),
        n_nodes=n_nodes,
        seed=seed,
        bandwidth_model=bandwidth_model,
    )
    transfer = TransferService(dep.env, dep.network, dep.sites)
    vm_load = {vm.name: 0 for vm in dep.workers}
    return ClusterView(dep, transfer, vm_load)


def diamond_workflow(file_size=1 * MB):
    """Two producers feeding one consumer -- exercises parent weights."""
    wf = Workflow("diamond")
    a = WorkflowFile("a.dat", size=file_size)
    b = WorkflowFile("b.dat", size=file_size // 4)
    wf.add_task(Task("pa", outputs=[a]))
    wf.add_task(Task("pb", outputs=[b]))
    wf.add_task(Task("join", inputs=[a, b]))
    return wf


class TestRegistry:
    def test_names_and_factories_agree(self):
        assert set(SCHEDULER_NAMES) == set(SCHEDULERS)
        for name in SCHEDULER_NAMES:
            policy = make_scheduler(name)
            assert isinstance(policy, PlacementPolicy)
            assert policy.name == name

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError, match="unknown scheduler"):
            make_scheduler("simulated-annealing")

    def test_knob_threading(self):
        hybrid = make_scheduler(
            "hybrid",
            locality_weight=2.0,
            load_weight=0.5,
            transfer_weight=3.0,
            pending_penalty=0.0,
        )
        assert hybrid.locality_weight == 2.0
        assert hybrid.load_weight == 0.5
        assert hybrid.transfer_weight == 3.0
        assert hybrid.pending_penalty == 0.0

    @pytest.mark.parametrize(
        "knob",
        [
            {"pending_penalty": -1.0},
            {"locality_weight": -0.1},
            {"load_weight": -2.0},
            {"transfer_weight": -0.5},
        ],
    )
    def test_negative_knobs_rejected(self, knob):
        with pytest.raises(ValueError):
            make_scheduler("hybrid", **knob)


class TestPlacementProperties:
    """Every policy must return a worker VM at a valid site -- across
    topologies, fleet sizes, load states and parent-site combinations."""

    @pytest.mark.parametrize("name", SCHEDULER_NAMES)
    @pytest.mark.parametrize(
        "topology_fn, n_nodes",
        [
            (azure_4dc_topology, 8),
            (azure_4dc_topology, 5),  # uneven fleet
            (heterogeneous_fanout_topology, 3),  # one site has no workers
            (heterogeneous_fanout_topology, 12),
        ],
    )
    def test_place_returns_valid_worker(self, name, topology_fn, n_nodes):
        if topology_fn is azure_4dc_topology:
            cluster = make_cluster(topology_fn(jitter=False), n_nodes)
        else:
            cluster = make_cluster(topology_fn(), n_nodes)
        wf = diamond_workflow()
        join = wf.tasks["join"]
        policy = make_scheduler(name)
        worker_names = {vm.name for vm in cluster.workers}
        sites = set(cluster.sites)
        # Sweep parent-site combinations and evolving load.
        combos = [
            [s1, s2]
            for s1 in cluster.sites
            for s2 in cluster.sites
        ]
        for i, parent_sites in enumerate(combos):
            # Parents' outputs live where the parents ran.
            cluster.transfer.store(
                parent_sites[0], StoredFile("a.dat", 1 * MB, 0.0)
            )
            cluster.transfer.store(
                parent_sites[1], StoredFile("b.dat", 1 * MB // 4, 0.0)
            )
            vm = policy.place(join, wf, parent_sites, cluster)
            assert vm.name in worker_names
            assert vm.site in sites
            policy.on_task_placed(join, vm, cluster)
            cluster.vm_load[vm.name] += 1
            if i % 3 == 2:  # periodically release some load
                busy = max(
                    cluster.vm_load, key=lambda k: cluster.vm_load[k]
                )
                if cluster.vm_load[busy]:
                    cluster.vm_load[busy] -= 1
                policy.on_task_complete(join, vm, cluster)

    @pytest.mark.parametrize("name", SCHEDULER_NAMES)
    def test_root_tasks_place_on_workers(self, name):
        cluster = make_cluster()
        wf = Workflow("roots")
        worker_names = {vm.name for vm in cluster.workers}
        policy = make_scheduler(name)
        for i in range(20):
            t = wf.add_task(Task(f"r{i}"))
            vm = policy.place(t, wf, [], cluster)
            assert vm.name in worker_names
            cluster.vm_load[vm.name] += 1

    def test_round_robin_is_deterministic_for_fixed_seed(self):
        """Two identical fleets + histories -> identical placements."""

        def sequence():
            cluster = make_cluster(seed=42)
            wf = Workflow("seq")
            policy = RoundRobinPolicy()
            out = []
            for i in range(17):
                t = wf.add_task(Task(f"t{i}"))
                vm = policy.place(t, wf, [], cluster)
                out.append(vm.name)
                cluster.vm_load[vm.name] += 1
            return out

        first, second = sequence(), sequence()
        assert first == second
        # And it is an actual rotation over the fleet.
        n = len(make_cluster(seed=42).workers)
        assert first[:n] == [f"worker-{i}" for i in range(n)]
        assert first[n] == first[0]

    def test_locality_follows_heaviest_parent(self):
        cluster = make_cluster()
        wf = diamond_workflow(file_size=100 * MB)
        policy = LocalityPolicy()
        vm = policy.place(
            wf.tasks["join"], wf, ["east-us", "west-europe"], cluster
        )
        assert vm.site == "east-us"

    def test_load_balanced_prefers_idle_then_data(self):
        cluster = make_cluster()
        policy = make_scheduler("load_balanced")
        wf = diamond_workflow()
        # Saturate every VM except one at the data-light site.
        for vm in cluster.workers:
            cluster.vm_load[vm.name] = 2
        free = cluster.workers_at("south-central-us")[0]
        cluster.vm_load[free.name] = 0
        vm = policy.place(
            wf.tasks["join"], wf, ["east-us", "east-us"], cluster
        )
        assert vm.name == free.name


class TestBandwidthAware:
    def test_avoids_thin_link_for_bulky_inputs(self):
        """With data at the hub and busy hub workers, the policy stages
        over a fat link instead of the nearby thin one."""
        cluster = make_cluster(
            heterogeneous_fanout_topology(), n_nodes=8
        )
        wf = Workflow("bulk")
        src = WorkflowFile("bulk.dat", size=24 * MB)
        wf.add_task(Task("producer", outputs=[src]))
        consumer = wf.add_task(
            Task("consumer", inputs=[src], compute_time=1.0)
        )
        cluster.transfer.store("hub", StoredFile("bulk.dat", 24 * MB, 0.0))
        for vm in cluster.workers_at("hub"):
            cluster.vm_load[vm.name] = 3  # hub saturated
        policy = make_scheduler("bandwidth_aware")
        vm = policy.place(consumer, wf, ["hub"], cluster)
        assert vm.site in ("fat-a", "fat-b")

    @pytest.mark.parametrize("release_hook", ["staged", "complete"])
    def test_pending_ledger_conserved(self, release_hook):
        """Every placement claim is released once inputs finish staging
        (or, as a fallback for failed staging, at task completion)."""
        cluster = make_cluster(
            heterogeneous_fanout_topology(), n_nodes=8
        )
        wf = Workflow("ledger")
        src = WorkflowFile("part.dat", size=10 * MB)
        wf.add_task(Task("p", outputs=[src]))
        cluster.transfer.store("hub", StoredFile("part.dat", 10 * MB, 0.0))
        policy = make_scheduler("bandwidth_aware")
        tasks = [
            wf.add_task(Task(f"c{i}", inputs=[src])) for i in range(6)
        ]
        placed = []
        for t in tasks:
            vm = policy.place(t, wf, ["hub"], cluster)
            policy.on_task_placed(t, vm, cluster)
            cluster.vm_load[vm.name] += 1
            placed.append((t, vm))
        assert policy._pending  # remote placements were claimed
        for t, vm in placed:
            if release_hook == "staged":
                policy.on_inputs_staged(t, vm, cluster)
            cluster.vm_load[vm.name] -= 1
            policy.on_task_complete(t, vm, cluster)
        assert policy._pending == {}
        assert policy._claims == {}

    def test_ledger_clears_at_staging_not_completion(self):
        """The compute phase must not keep phantom pending bytes on the
        links: claims vanish at on_inputs_staged, before completion."""
        cluster = make_cluster(
            heterogeneous_fanout_topology(), n_nodes=8
        )
        wf = Workflow("phases")
        src = WorkflowFile("part.dat", size=10 * MB)
        wf.add_task(Task("p", outputs=[src]))
        cluster.transfer.store("hub", StoredFile("part.dat", 10 * MB, 0.0))
        for vm in cluster.workers_at("hub"):
            cluster.vm_load[vm.name] = 5  # force a remote claim
        policy = make_scheduler("bandwidth_aware")
        t = wf.add_task(Task("c", inputs=[src], compute_time=60.0))
        vm = policy.place(t, wf, ["hub"], cluster)
        policy.on_task_placed(t, vm, cluster)
        assert policy._pending
        policy.on_inputs_staged(t, vm, cluster)
        assert policy._pending == {}  # long compute no longer pollutes
        policy.on_task_complete(t, vm, cluster)  # idempotent
        assert policy._claims == {}

    def test_pending_ledger_spreads_simultaneous_placements(self):
        """Without any open flow, the ledger alone must keep a burst of
        identical placements from stampeding one link."""
        cluster = make_cluster(
            heterogeneous_fanout_topology(), n_nodes=8, seed=1
        )
        wf = Workflow("burst")
        files = []
        for i in range(8):
            f = WorkflowFile(f"part-{i}", size=24 * MB)
            files.append(f)
            cluster.transfer.store(
                "hub", StoredFile(f.name, f.size, 0.0)
            )
        wf.add_task(Task("p", outputs=list(files)))
        for vm in cluster.workers_at("hub"):
            cluster.vm_load[vm.name] = 5  # force remote placement
        policy = make_scheduler("bandwidth_aware")
        sites = []
        for i in range(8):
            t = wf.add_task(
                Task(f"c{i}", inputs=[files[i]], compute_time=1.0)
            )
            vm = policy.place(t, wf, ["hub"], cluster)
            policy.on_task_placed(t, vm, cluster)
            cluster.vm_load[vm.name] += 1
            sites.append(vm.site)
        # Both fat sites used, not a single-link stampede.
        assert {"fat-a", "fat-b"} <= set(sites)
