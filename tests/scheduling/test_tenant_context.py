"""Tenant-aware ClusterView: placement policies can see who they place.

Plumbing-only contract (scheduling decisions stay tenant-blind in this
repo): on the workload surface the engine sets
``ClusterView.placing_tenant`` around each ``place()`` call and keeps
``ClusterView.tenant_load`` live; on the single-workflow surface both
stay empty.
"""

from repro.cloud.deployment import Deployment
from repro.metadata.controller import ArchitectureController
from repro.scheduling import TenantContext
from repro.workflow.engine import WorkflowEngine
from repro.workflow.patterns import scatter
from repro.workload import WorkloadRunner, WorkloadSpec


def _run_workload_with_probe(monkeypatch):
    dep = Deployment(n_nodes=8, seed=3)
    ctrl = ArchitectureController(dep, strategy="decentralized")
    runner = WorkloadRunner(dep, ctrl.strategy)
    engine = runner.engine

    seen = []
    inner = engine._place

    def probe(workflow, task, parent_sites):
        seen.append(engine.cluster.placing_tenant)
        return inner(workflow, task, parent_sites)

    monkeypatch.setattr(engine, "_place", probe)
    spec = WorkloadSpec.uniform(
        3,
        applications=("scatter",),
        n_instances=1,
        ops_per_task=4,
        compute_time=0.2,
        seed=7,
        name="tenant-probe",
    )
    res = runner.run(spec)
    ctrl.shutdown()
    return res, runner, seen


class TestWorkloadSurface:
    def test_placing_tenant_set_around_every_placement(
        self, monkeypatch
    ):
        res, runner, seen = _run_workload_with_probe(monkeypatch)
        assert res.n_completed == 3
        assert seen, "the probe must observe placements"
        assert all(isinstance(t, TenantContext) for t in seen)
        assert {t.name for t in seen} == set(res.tenants())
        # Unbounded admission surfaces as quota=None.
        assert all(t.quota is None for t in seen)
        # The context is scoped to the place() call, not left dangling.
        assert runner.engine.cluster.placing_tenant is None

    def test_tenant_load_counts_down_to_zero(self, monkeypatch):
        res, runner, _ = _run_workload_with_probe(monkeypatch)
        load = runner.engine.cluster.tenant_load
        # Every tenant passed through the counters and drained out.
        assert set(load) == set(res.tenants())
        assert all(v == 0 for v in load.values())


class TestWorkflowSurface:
    def test_single_workflow_runs_are_tenant_blind(self):
        dep = Deployment(n_nodes=8, seed=3)
        ctrl = ArchitectureController(dep, strategy="decentralized")
        engine = WorkflowEngine(dep, ctrl.strategy)
        engine.run(scatter(4, compute_time=0.2))
        assert engine.cluster.placing_tenant is None
        assert engine.cluster.tenant_load == {}
        ctrl.shutdown()


class TestTenantContext:
    def test_frozen_value_object(self):
        ctx = TenantContext(name="t0", quota=4)
        assert ctx.name == "t0"
        assert ctx.quota == 4
        assert ctx == TenantContext(name="t0", quota=4)
