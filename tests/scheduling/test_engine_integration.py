"""Engine-level integration of the scheduling subsystem."""

import pytest

from repro.cloud.deployment import Deployment
from repro.cloud.presets import (
    azure_4dc_topology,
    heterogeneous_fanout_topology,
)
from repro.metadata.config import MetadataConfig
from repro.metadata.controller import ArchitectureController
from repro.scheduling import (
    LocalityPolicy,
    PlacementPolicy,
    RoundRobinPolicy,
    SCHEDULER_NAMES,
)
from repro.util.units import MB
from repro.workflow.engine import WorkflowEngine
from repro.workflow.patterns import gather, scatter


@pytest.fixture
def dep():
    return Deployment(
        topology=azure_4dc_topology(jitter=False), n_nodes=8, seed=5
    )


def build(dep, fast_config, **kw):
    cfg = kw.pop("config", fast_config)
    ctrl = ArchitectureController(dep, strategy="decentralized", config=cfg)
    return WorkflowEngine(dep, ctrl.strategy, **kw), ctrl


class TestPolicyResolution:
    def test_default_is_locality(self, dep, fast_config):
        engine, ctrl = build(dep, fast_config)
        ctrl.shutdown()
        assert isinstance(engine.policy, LocalityPolicy)

    def test_legacy_flag_maps_to_round_robin(self, dep, fast_config):
        engine, ctrl = build(dep, fast_config, locality_scheduling=False)
        ctrl.shutdown()
        assert isinstance(engine.policy, RoundRobinPolicy)

    def test_config_pins_policy(self, dep, fast_config):
        cfg = MetadataConfig(
            **{**fast_config.__dict__, "scheduler": "load_balanced"}
        )
        engine, ctrl = build(dep, fast_config, config=cfg)
        ctrl.shutdown()
        assert engine.policy.name == "load_balanced"

    def test_deployment_default_used_when_config_silent(self, fast_config):
        dep = Deployment(
            topology=azure_4dc_topology(jitter=False),
            n_nodes=8,
            seed=5,
            scheduler="round_robin",
        )
        engine, ctrl = build(dep, fast_config)
        ctrl.shutdown()
        assert engine.policy.name == "round_robin"

    def test_explicit_argument_wins(self, fast_config):
        dep = Deployment(
            topology=azure_4dc_topology(jitter=False),
            n_nodes=8,
            seed=5,
            scheduler="round_robin",
        )
        cfg = MetadataConfig(
            **{**fast_config.__dict__, "scheduler": "load_balanced"}
        )
        engine, ctrl = build(dep, fast_config, config=cfg, scheduler="hybrid")
        ctrl.shutdown()
        assert engine.policy.name == "hybrid"

    def test_policy_instance_injected_directly(self, dep, fast_config):
        policy = RoundRobinPolicy()
        engine, ctrl = build(dep, fast_config, scheduler=policy)
        ctrl.shutdown()
        assert engine.policy is policy

    def test_config_knobs_reach_the_policy(self, dep, fast_config):
        cfg = MetadataConfig(
            **{
                **fast_config.__dict__,
                "scheduler": "hybrid",
                "hybrid_locality_weight": 3.0,
                "hybrid_transfer_weight": 0.25,
                "bw_pending_penalty": 2.0,
            }
        )
        engine, ctrl = build(dep, fast_config, config=cfg)
        ctrl.shutdown()
        assert engine.policy.locality_weight == 3.0
        assert engine.policy.transfer_weight == 0.25
        assert engine.policy.pending_penalty == 2.0

    def test_unknown_scheduler_rejected(self, dep, fast_config):
        with pytest.raises(ValueError, match="unknown scheduler"):
            build(dep, fast_config, scheduler="work-stealing")

    def test_unknown_deployment_scheduler_rejected(self):
        with pytest.raises(ValueError, match="unknown scheduler"):
            Deployment(n_nodes=4, scheduler="work-stealing")


class TestEveryPolicyRuns:
    @pytest.mark.parametrize("name", SCHEDULER_NAMES)
    def test_completes_and_releases_load(self, dep, fast_config, name):
        engine, ctrl = build(dep, fast_config, scheduler=name)
        res = engine.run(scatter(10, compute_time=0.2, file_size=1 * MB))
        ctrl.shutdown()
        assert len(res.task_results) == 11
        assert all(v == 0 for v in engine._vm_load.values())
        sites = set(dep.sites)
        workers = {vm.name for vm in dep.workers}
        for r in res.task_results:
            assert r.site in sites
            assert r.vm in workers

    @pytest.mark.parametrize("name", SCHEDULER_NAMES)
    def test_placements_reproducible(self, dep, fast_config, name):
        """Same seed + same policy -> identical placement sequence."""

        def placements(seed):
            d = Deployment(
                topology=azure_4dc_topology(jitter=False),
                n_nodes=8,
                seed=seed,
            )
            engine, ctrl = build(d, fast_config, scheduler=name)
            res = engine.run(
                gather(9, compute_time=0.1, file_size=2 * MB)
            )
            ctrl.shutdown()
            return [
                (r.task_id, r.vm)
                for r in sorted(res.task_results, key=lambda r: r.task_id)
            ]

        assert placements(3) == placements(3)


class TestHooks:
    def test_hooks_fire_once_per_task(self, dep, fast_config):
        class Recorder(PlacementPolicy):
            name = "recorder"

            def __init__(self):
                self.inner = RoundRobinPolicy()
                self.placed = []
                self.completed = []

            def place(self, task, workflow, parent_sites, cluster):
                return self.inner.place(
                    task, workflow, parent_sites, cluster
                )

            def on_task_placed(self, task, vm, cluster):
                self.placed.append((task.task_id, vm.name))

            def on_task_complete(self, task, vm, cluster):
                self.completed.append((task.task_id, vm.name))

        policy = Recorder()
        engine, ctrl = build(dep, fast_config, scheduler=policy)
        res = engine.run(scatter(6, compute_time=0.1))
        ctrl.shutdown()
        assert len(res.task_results) == 7
        assert len(policy.placed) == 7
        assert sorted(policy.placed) == sorted(policy.completed)


class TestInputSite:
    @staticmethod
    def external_input_workflow():
        from repro.workflow.dag import Task, Workflow, WorkflowFile

        wf = Workflow("ext")
        ext = WorkflowFile("ext.dat", size=1 * MB)
        wf.add_task(Task("reader", inputs=[ext], compute_time=0.1))
        return wf

    def test_default_stages_at_first_site(self, dep, fast_config):
        engine, ctrl = build(dep, fast_config)
        engine.run(self.external_input_workflow())
        ctrl.shutdown()
        assert engine.transfer.stores[dep.sites[0]].has("ext.dat")

    @pytest.mark.parametrize("site", ["east-us", "south-central-us"])
    def test_input_site_knob_moves_the_origin(self, dep, fast_config, site):
        engine, ctrl = build(dep, fast_config, input_site=site)
        engine.run(self.external_input_workflow())
        ctrl.shutdown()
        # Staged at the requested origin; the reader (placed at
        # dep.sites[0] by root round-robin) had to fetch it from there.
        assert engine.transfer.stores[site].has("ext.dat")
        assert engine.transfer.wan_bytes == 1 * MB
        assert engine.transfer.transfers == 1

    def test_unknown_input_site_rejected(self, dep, fast_config):
        with pytest.raises(KeyError):
            build(dep, fast_config, input_site="mars-central")


class TestBandwidthAwareEndToEnd:
    def test_avoids_thin_pipe_on_capped_fanout(self, fast_config):
        """End-to-end: on the heterogeneous testbed the bandwidth-aware
        engine never stages bulk inputs over the thin link, and beats
        the locality engine's makespan."""
        from repro.experiments.scheduler_compare import (
            run_scheduler_compare,
        )

        result = run_scheduler_compare(
            policies=("locality", "bandwidth_aware"),
            bandwidth_model="fair",
            config=fast_config,
        )
        assert (
            result.makespan["bandwidth_aware"]
            <= result.makespan["locality"]
        )
        assert result.tasks_per_site["bandwidth_aware"].get("thin", 0) == 0
        assert result.tasks_per_site["locality"].get("thin", 0) > 0
