"""Validation, serialization and builder tests for the scenario spec tree."""

import dataclasses

import pytest

from repro.metadata.config import MetadataConfig
from repro.scenario import (
    SCENARIOS,
    ElasticitySpec,
    FaultSpec,
    NetworkSpec,
    ScenarioSpec,
    SchedulerSpec,
    StrategySpec,
    TopologySpec,
    config_from_specs,
    get_scenario,
    register_scenario,
)
from repro.util.units import MB
from repro.workload import WorkloadSpec


def workload_spec(n=2, **kwargs):
    return WorkloadSpec.uniform(n, name="test", **kwargs)


class TestRoundTrip:
    @pytest.mark.parametrize("name", sorted(SCENARIOS))
    def test_registry_dict_round_trip_is_identity(self, name):
        spec = SCENARIOS[name]
        assert ScenarioSpec.from_dict(spec.to_dict()) == spec

    @pytest.mark.parametrize("name", sorted(SCENARIOS))
    def test_registry_json_round_trip_is_identity(self, name):
        spec = SCENARIOS[name]
        assert ScenarioSpec.from_json(spec.to_json()) == spec

    def test_file_round_trip(self, tmp_path):
        spec = get_scenario("outage_resilience")
        path = tmp_path / "spec.json"
        spec.save(path)
        assert ScenarioSpec.load(path) == spec

    def test_round_trip_restores_tuples(self):
        spec = ScenarioSpec(
            surface="workflow",
            faults=(
                FaultSpec(
                    "link_flap",
                    link=["west-europe", "east-us"],
                    times=[1.0, 2.0],
                ),
            ),
        )
        back = ScenarioSpec.from_json(spec.to_json())
        assert back == spec
        assert isinstance(back.faults[0].link, tuple)
        assert isinstance(back.faults[0].times, tuple)

    def test_workload_round_trip_restores_tenants(self):
        spec = ScenarioSpec(
            surface="workload", workload=workload_spec(3)
        )
        back = ScenarioSpec.from_json(spec.to_json())
        assert back == spec
        assert back.workload.tenants == spec.workload.tenants

    def test_unknown_keys_rejected(self):
        with pytest.raises(ValueError, match="unknown ScenarioSpec keys"):
            ScenarioSpec.from_dict({"surfaces": "workflow"})
        with pytest.raises(ValueError, match="unknown NetworkSpec keys"):
            ScenarioSpec.from_dict({"network": {"bandwith_model": "fair"}})
        with pytest.raises(ValueError, match="unknown WorkloadSpec keys"):
            ScenarioSpec.from_dict(
                {"surface": "workload", "workload": {"tenant": []}}
            )


class TestReplace:
    def test_dotted_path_replaces_nested_field(self):
        spec = get_scenario("paper_default")
        out = spec.replace(**{"scheduler.name": "bandwidth_aware"})
        assert out.scheduler.name == "bandwidth_aware"
        # The original is untouched (functional builder).
        assert spec.scheduler.name is None
        # Unrelated fields carried over.
        assert out.n_nodes == spec.n_nodes

    def test_multiple_overrides_on_one_subspec_compose(self):
        out = ScenarioSpec().replace(
            **{
                "network.bandwidth_model": "fair",
                "network.egress_cap_mb": 10.0,
                "n_nodes": 4,
            }
        )
        assert out.network.bandwidth_model == "fair"
        assert out.network.egress_cap_mb == 10.0
        assert out.n_nodes == 4

    def test_unknown_field_rejected(self):
        with pytest.raises(ValueError, match="unknown field"):
            ScenarioSpec().replace(**{"scheduler.nmae": "hybrid"})
        with pytest.raises(ValueError, match="bad override"):
            ScenarioSpec().replace(nmae="x")

    def test_descending_into_unset_field_rejected(self):
        with pytest.raises(ValueError, match="unset"):
            ScenarioSpec().replace(**{"workload.mode": "open"})


class TestReplaceIndexPaths:
    """Numeric path segments index into spec tuples."""

    def test_fault_field_overridden_by_index(self):
        spec = get_scenario("outage_resilience")
        out = spec.replace(**{"faults.0.duration": 9.0})
        assert out.faults[0].duration == 9.0
        # The sibling fault and the original spec are untouched.
        assert out.faults[1] == spec.faults[1]
        assert spec.faults[0].duration == 4.0
        assert isinstance(out.faults, tuple)
        out.validate()

    def test_tenant_field_overridden_by_index(self):
        spec = get_scenario("open_loop_tokens")
        out = spec.replace(**{"workload.tenants.1.arrival_rate": 2.0})
        assert out.workload.tenants[1].arrival_rate == 2.0
        assert out.workload.tenants[0] == spec.workload.tenants[0]
        out.validate()

    def test_bare_index_replaces_whole_element(self):
        spec = get_scenario("outage_resilience")
        flap = spec.faults[1]
        out = spec.replace(**{"faults.1": flap})
        assert out.faults[1] == flap

    def test_non_numeric_segment_into_tuple_rejected(self):
        spec = get_scenario("outage_resilience")
        with pytest.raises(ValueError, match="numeric index"):
            spec.replace(**{"faults.first.duration": 9.0})

    def test_out_of_range_index_rejected(self):
        spec = get_scenario("outage_resilience")
        with pytest.raises(ValueError, match="out of range"):
            spec.replace(**{"faults.2.duration": 9.0})

    def test_index_paths_compose_as_sweep_axes(self):
        from repro.scenario import run_sweep

        res = run_sweep(
            get_scenario("open_loop_tokens"),
            {"workload.tenants.0.arrival_rate": [0.5, 1.0]},
            quick=True,
        )
        assert all(c.ok for c in res.cells)
        rates = [
            c.result.spec.workload.tenants[0].arrival_rate
            for c in res.cells
        ]
        assert rates == [0.5, 1.0]


class TestElasticitySpec:
    def test_disabled_default_validates(self):
        ElasticitySpec().validate()

    def test_tuned_but_disabled_rejected(self):
        with pytest.raises(ValueError, match="enabled=True"):
            ElasticitySpec(lag_s=5.0).validate()

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError, match="unknown elasticity policy"):
            ElasticitySpec(enabled=True, policy="magic").validate()

    @pytest.mark.parametrize(
        "kw,msg",
        [
            ({"interval_s": 0.0}, "interval_s"),
            ({"lag_s": -1.0}, "lag_s"),
            ({"warmup_factor": 0.5}, "warmup_factor"),
            ({"min_vms_per_site": 0}, "min_vms_per_site"),
            ({"max_vms_per_site": 0}, "max_vms_per_site"),
            ({"scale_step": 0}, "scale_step"),
            ({"cooldown_s": -1.0}, "cooldown_s"),
            (
                {"up_threshold": 0.1, "down_threshold": 0.2},
                "hysteresis",
            ),
        ],
    )
    def test_bounds_enforced(self, kw, msg):
        with pytest.raises(ValueError, match=msg):
            ElasticitySpec(enabled=True, **kw).validate()

    @pytest.mark.parametrize(
        "kw,policy",
        [
            ({"up_threshold": 3.0}, "predictive"),
            ({"down_threshold": 0.1}, "predictive"),
            ({"debt_budget_s": 2.0}, "threshold"),
            ({"ewma_alpha": 0.5}, "threshold"),
            ({"target_task_s": 5.0}, "slo_debt"),
        ],
    )
    def test_policy_specific_knobs_rejected_elsewhere(self, kw, policy):
        with pytest.raises(ValueError, match="policy='"):
            ElasticitySpec(enabled=True, policy=policy, **kw).validate()

    def test_cost_rates_validated(self):
        with pytest.raises(ValueError, match="repeats"):
            ElasticitySpec(
                enabled=True, cost_rates=(("eu", 1.0), ("eu", 2.0))
            ).validate()
        with pytest.raises(ValueError, match="positive"):
            ElasticitySpec(
                enabled=True, cost_rates=(("eu", 0.0),)
            ).validate()
        with pytest.raises(ValueError, match="class names"):
            ElasticitySpec(
                enabled=True, cost_rates=(("", 1.0),)
            ).validate()

    def test_elastic_registry_scenarios_enabled_and_valid(self):
        for name in ("autoscale_ramp", "autoscale_pareto"):
            spec = get_scenario(name)
            assert spec.elasticity.enabled
            spec.validate()


class TestValidation:
    def test_registry_specs_all_validate(self):
        for spec in SCENARIOS.values():
            spec.validate()

    def test_fair_only_knobs_rejected_under_slots(self):
        spec = ScenarioSpec(
            network=NetworkSpec(bandwidth_model="slots", egress_cap_mb=10.0)
        )
        with pytest.raises(ValueError, match="require --bandwidth-model fair"):
            spec.validate()

    def test_hybrid_knobs_rejected_under_other_policies(self):
        spec = ScenarioSpec(
            scheduler=SchedulerSpec(
                name="locality", hybrid_load_weight=2.0
            )
        )
        with pytest.raises(ValueError, match="require --scheduler hybrid"):
            spec.validate()

    def test_pending_penalty_rejected_without_bandwidth_aware(self):
        spec = ScenarioSpec(scheduler=SchedulerSpec(bw_pending_penalty=0.5))
        with pytest.raises(ValueError, match="--bw-pending-penalty"):
            spec.validate()

    def test_admission_rejected_in_single_workflow_mode(self):
        spec = ScenarioSpec(surface="workflow", admission="unbounded")
        with pytest.raises(ValueError, match="workload-surface"):
            spec.validate()

    def test_admission_knobs_rejected_under_other_policies(self):
        spec = ScenarioSpec(
            surface="workload",
            workload=workload_spec(),
            admission="unbounded",
            max_in_flight=2,
        )
        with pytest.raises(ValueError, match="max_in_flight"):
            spec.validate()
        spec = ScenarioSpec(
            surface="workload",
            workload=workload_spec(),
            admission="max_in_flight",
            token_rate=1.0,
        )
        with pytest.raises(ValueError, match="token_bucket"):
            spec.validate()

    def test_workload_surface_needs_embedded_workload(self):
        with pytest.raises(ValueError, match="embedded workload"):
            ScenarioSpec(surface="workload").validate()
        with pytest.raises(ValueError, match="surface='workload'"):
            ScenarioSpec(
                surface="workflow", workload=workload_spec()
            ).validate()

    def test_topology_preset_specific_knobs_rejected(self):
        with pytest.raises(ValueError, match="hetero_fanout-preset"):
            ScenarioSpec(
                topology=TopologySpec(preset="azure_4dc", hub_egress_mb=5.0)
            ).validate()
        with pytest.raises(ValueError, match="uniform-preset"):
            ScenarioSpec(
                topology=TopologySpec(preset="azure_4dc", sites=("a", "b"))
            ).validate()
        with pytest.raises(ValueError, match="unknown topology preset"):
            ScenarioSpec(topology=TopologySpec(preset="ring")).validate()

    def test_unknown_strategy_scheduler_application_rejected(self):
        with pytest.raises(ValueError, match="unknown strategy"):
            ScenarioSpec(strategy=StrategySpec(name="oracle")).validate()
        with pytest.raises(ValueError, match="scheduler must be None"):
            ScenarioSpec(scheduler=SchedulerSpec(name="annealing")).validate()
        with pytest.raises(ValueError, match="unknown application"):
            ScenarioSpec(application="hpl").validate()

    def test_strategy_aliases_accepted(self):
        for alias in ("dn", "dr", "baseline"):
            ScenarioSpec(strategy=StrategySpec(name=alias)).validate()

    def test_fault_site_membership_checked(self):
        spec = ScenarioSpec(
            faults=(
                FaultSpec(
                    "site_outage", start=1.0, duration=1.0, site="mars"
                ),
            )
        )
        with pytest.raises(ValueError, match="unknown site 'mars'"):
            spec.validate()

    def test_fault_kind_specific_fields_enforced(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultSpec("meteor").validate()
        with pytest.raises(ValueError, match="needs a site"):
            FaultSpec("site_outage", duration=1.0).validate()
        with pytest.raises(ValueError, match="does not apply"):
            FaultSpec(
                "site_outage",
                site="x",
                duration=1.0,
                times=(1.0,),
            ).validate()
        with pytest.raises(ValueError, match="exactly one"):
            FaultSpec("region_outage", duration=1.0).validate()
        with pytest.raises(ValueError, match="flap time"):
            FaultSpec("link_flap", link=("a", "b")).validate()
        with pytest.raises(ValueError, match="duration must be positive"):
            FaultSpec("latency_spike", link=("a", "b")).validate()

    def test_input_site_rejected_off_the_workflow_surface(self):
        spec = ScenarioSpec(
            surface="synthetic",
            scheduler=SchedulerSpec(input_site="east-us"),
        )
        with pytest.raises(ValueError, match="workflow-surface knob"):
            spec.validate()
        # Workload surface too: data origins are per-tenant there, so
        # a scenario-level input_site would be silently ignored.
        spec = ScenarioSpec(
            surface="workload",
            workload=workload_spec(),
            scheduler=SchedulerSpec(input_site="east-us"),
        )
        with pytest.raises(ValueError, match="per-tenant|workflow-surface"):
            spec.validate()

    def test_region_outage_region_tag_membership_checked(self):
        spec = ScenarioSpec(
            faults=(
                FaultSpec(
                    "region_outage", start=1.0, duration=1.0, region="mars"
                ),
            )
        )
        with pytest.raises(ValueError, match="unknown region 'mars'"):
            spec.validate()
        # Valid tags of each preset pass.
        ScenarioSpec(
            faults=(
                FaultSpec(
                    "region_outage", start=1.0, duration=1.0, region="europe"
                ),
            )
        ).validate()
        ScenarioSpec(
            topology=TopologySpec(
                preset="uniform",
                sites=("a", "b"),
                regions=(("a", "eu"),),
            ),
            faults=(
                FaultSpec(
                    "region_outage",
                    start=1.0,
                    duration=1.0,
                    region="region-b",
                ),
            ),
        ).validate()

    def test_home_and_input_site_membership_checked(self):
        with pytest.raises(ValueError, match="home_site"):
            ScenarioSpec(
                strategy=StrategySpec(home_site="mars")
            ).validate()
        with pytest.raises(ValueError, match="input_site"):
            ScenarioSpec(
                scheduler=SchedulerSpec(input_site="mars")
            ).validate()


class TestConfigMapping:
    def test_default_spec_pins_nothing(self):
        assert ScenarioSpec().to_metadata_config() is None

    def test_network_fields_mapped_with_unit_conversion(self):
        cfg = ScenarioSpec(
            network=NetworkSpec(
                bandwidth_model="fair",
                egress_cap_mb=10.0,
                ingress_cap_mb=5.0,
                rpc_flow_weight=2.0,
            )
        ).to_metadata_config()
        assert cfg.bandwidth_model == "fair"
        assert cfg.site_egress_bw == 10.0 * MB
        assert cfg.site_ingress_bw == 5.0 * MB
        assert cfg.rpc_flow_weight == 2.0

    def test_strategy_and_scheduler_fields_mapped(self):
        cfg = ScenarioSpec(
            strategy=StrategySpec(
                home_site="east-us", hybrid_sync_replication=True
            ),
            scheduler=SchedulerSpec(name="hybrid", hybrid_load_weight=2.0),
        ).to_metadata_config()
        assert cfg.home_site == "east-us"
        assert cfg.hybrid_sync_replication is True
        assert cfg.scheduler == "hybrid"
        assert cfg.hybrid_load_weight == 2.0

    def test_config_base_is_overridden_by_spec_pins(self):
        base = MetadataConfig(sync_period=9.0)
        cfg = ScenarioSpec(
            scheduler=SchedulerSpec(name="round_robin")
        ).to_metadata_config(base=base)
        assert cfg.sync_period == 9.0
        assert cfg.scheduler == "round_robin"

    def test_unpinned_strategy_knobs_never_clobber_the_base(self):
        """Pinning one strategy knob must not reset the base's others
        to spec defaults."""
        base = MetadataConfig(
            home_site="east-us", hybrid_sync_replication=True
        )
        cfg = ScenarioSpec(
            strategy=StrategySpec(write_lookup=True)
        ).to_metadata_config(base=base)
        assert cfg.home_site == "east-us"
        assert cfg.hybrid_sync_replication is True
        assert cfg.write_lookup is True

    def test_config_from_specs_returns_base_when_nothing_pinned(self):
        assert config_from_specs() is None
        base = MetadataConfig()
        assert (
            config_from_specs(
                network=NetworkSpec(), scheduler=SchedulerSpec(), base=base
            )
            is base
        )


class TestQuick:
    def test_quick_caps_each_surface(self):
        assert (
            get_scenario("paper_synthetic").quick().ops_per_node == 100
        )
        assert get_scenario("paper_default").quick().ops_per_task == 20
        mt = get_scenario("multi_tenant_8").quick()
        assert all(t.n_instances == 1 for t in mt.workload.tenants)
        assert all(t.ops_per_task <= 8 for t in mt.workload.tenants)
        mt.validate()


class TestRegistry:
    def test_get_scenario_unknown_name_lists_choices(self):
        with pytest.raises(ValueError, match="paper_default"):
            get_scenario("nope")

    def test_register_scenario_rejects_duplicates(self):
        spec = dataclasses.replace(
            get_scenario("paper_default"), name="paper_default"
        )
        with pytest.raises(ValueError, match="already registered"):
            register_scenario(spec)

    def test_register_and_overwrite_custom_scenario(self):
        spec = dataclasses.replace(
            get_scenario("paper_default"), name="_test_tmp"
        )
        try:
            register_scenario(spec)
            assert get_scenario("_test_tmp") == spec
            register_scenario(spec, overwrite=True)
        finally:
            SCENARIOS.pop("_test_tmp", None)


class TestSpecHash:
    #: Golden content hash of the paper_default scenario.  This pin is
    #: the artifact-store compatibility contract: if it moves, every
    #: previously written store key goes stale -- change it only with
    #: a deliberate spec-schema migration.
    PAPER_DEFAULT_HASH = (
        "75a7763ac1219014a6df0a043a49637549235e8f47225b8fd88568d5eb1767ba"
    )

    def test_paper_default_hash_is_pinned(self):
        assert (
            get_scenario("paper_default").spec_hash()
            == self.PAPER_DEFAULT_HASH
        )

    def test_hash_is_stable_across_instances(self):
        a = get_scenario("paper_default")
        b = ScenarioSpec.from_dict(a.to_dict())
        assert a.spec_hash() == b.spec_hash()
        assert a.canonical_json() == b.canonical_json()

    def test_hash_covers_every_field_change(self):
        base = get_scenario("paper_default")
        assert base.replace(seed=99).spec_hash() != base.spec_hash()
        assert (
            base.replace(**{"strategy.name": "centralized"}).spec_hash()
            != base.spec_hash()
        )
        # name participates too: artifacts self-identify by scenario.
        assert base.replace(name="other").spec_hash() != base.spec_hash()

    def test_hash_is_hex_sha256(self):
        h = get_scenario("paper_default").spec_hash()
        assert len(h) == 64
        int(h, 16)

    def test_disabled_elasticity_is_dropped_from_canonical_form(self):
        # The compatibility half of the elasticity-hash contract:
        # every pre-elasticity artifact key must stay where it is.
        spec = get_scenario("paper_default")
        assert '"elasticity"' not in spec.canonical_json()
        assert spec.spec_hash() == self.PAPER_DEFAULT_HASH

    def test_enabled_elasticity_participates_in_the_hash(self):
        base = get_scenario("multi_tenant_8")
        elastic = base.replace(
            elasticity=ElasticitySpec(enabled=True)
        )
        assert '"elasticity"' in elastic.canonical_json()
        assert elastic.spec_hash() != base.spec_hash()
        # ...and so does every knob on an enabled block: an autoscaled
        # run with a different lag simulates a different system.
        ramp = get_scenario("autoscale_ramp")
        assert (
            ramp.replace(**{"elasticity.lag_s": 7.0}).spec_hash()
            != ramp.spec_hash()
        )
