"""ObservabilitySpec: validation, round-trip, and hash exemption."""

import pytest

from repro.scenario import ObservabilitySpec, ScenarioSpec


def spec_with(obs):
    return ScenarioSpec(name="obs-spec-test", observability=obs)


class TestValidation:
    def test_defaults_valid(self):
        ObservabilitySpec().validate()
        spec_with(ObservabilitySpec()).validate()

    def test_enabled_with_categories(self):
        ObservabilitySpec(
            enabled=True, categories=("kernel", "span")
        ).validate()

    def test_unknown_category_rejected(self):
        with pytest.raises(ValueError, match="unknown"):
            ObservabilitySpec(
                enabled=True, categories=("kernel", "bogus")
            ).validate()

    def test_empty_categories_rejected(self):
        with pytest.raises(ValueError):
            ObservabilitySpec(enabled=True, categories=()).validate()

    def test_knob_bounds(self):
        with pytest.raises(ValueError):
            ObservabilitySpec(enabled=True, sample_interval=0.0).validate()
        with pytest.raises(ValueError):
            ObservabilitySpec(enabled=True, max_events=0).validate()
        with pytest.raises(ValueError):
            ObservabilitySpec(
                enabled=True, histogram_capacity=4
            ).validate()

    def test_masquerade_guard(self):
        """Non-default knobs without enabled=True are a config mistake."""
        with pytest.raises(ValueError, match="enabled"):
            ObservabilitySpec(sample_interval=0.5).validate()
        with pytest.raises(ValueError, match="enabled"):
            ObservabilitySpec(categories=("kernel",)).validate()

    def test_categories_coerced_to_tuple(self):
        obs = ObservabilitySpec(enabled=True, categories=["kernel"])
        assert obs.categories == ("kernel",)


class TestSerialization:
    def test_round_trip(self):
        spec = spec_with(
            ObservabilitySpec(
                enabled=True,
                categories=("network", "span"),
                sample_interval=0.25,
                max_events=5000,
                histogram_capacity=128,
            )
        )
        again = ScenarioSpec.from_dict(spec.to_dict())
        assert again == spec
        assert again.observability.categories == ("network", "span")

    def test_replace_reaches_nested_fields(self):
        spec = spec_with(ObservabilitySpec(enabled=True))
        off = spec.replace(**{"observability.enabled": False})
        assert off.observability.enabled is False
        assert spec.observability.enabled is True  # original untouched


class TestHashExemption:
    def test_spec_hash_ignores_observability(self):
        """Tracing is a lens, not an experiment input: artifacts keyed
        by spec hash must collide across traced/untraced runs."""
        plain = spec_with(ObservabilitySpec())
        traced = spec_with(
            ObservabilitySpec(enabled=True, sample_interval=0.1)
        )
        assert plain.spec_hash() == traced.spec_hash()
        assert '"observability"' not in plain.canonical_json()

    def test_to_dict_still_carries_observability(self):
        doc = spec_with(ObservabilitySpec(enabled=True)).to_dict()
        assert doc["observability"]["enabled"] is True
