"""Execution tests for the scenario runner, faults and sweeps."""

import pytest

from repro.experiments.synthetic import run_synthetic_workload
from repro.scenario import (
    FaultSpec,
    NetworkSpec,
    ScenarioSpec,
    SchedulerSpec,
    StrategySpec,
    get_scenario,
    run_sweep,
)
from repro.workload import WorkloadSpec


def small_workflow_spec(**overrides):
    spec = ScenarioSpec(
        name="small",
        surface="workflow",
        application="buzzflow",
        ops_per_task=2,
        n_nodes=8,
        seed=3,
    )
    return spec.replace(**overrides) if overrides else spec


class TestWorkflowSurface:
    def test_run_returns_workflow_result_with_context(self):
        res = small_workflow_spec().run()
        assert res.surface == "workflow"
        assert res.makespan > 0
        assert res.scheduler == "locality"
        assert res.result.strategy == "hybrid"
        assert len(res.result.task_results) > 0
        assert res.wan_bytes >= 0

    def test_spec_runs_are_deterministic(self):
        a = small_workflow_spec().run()
        b = small_workflow_spec().run()
        assert a.makespan == b.makespan
        assert a.wan_bytes == b.wan_bytes

    def test_scheduler_pin_reaches_engine(self):
        res = small_workflow_spec(
            **{"scheduler.name": "round_robin"}
        ).run()
        assert res.scheduler == "round_robin"

    def test_prebuilt_workflow_override(self):
        from repro.workflow.patterns import scatter

        res = small_workflow_spec().run(workflow=scatter(4))
        assert res.result.workflow == "scatter"
        assert len(res.result.task_results) == 4 + 1

    def test_prebuilt_workflow_rejected_off_surface(self):
        from repro.workflow.patterns import scatter

        spec = get_scenario("paper_synthetic")
        with pytest.raises(ValueError, match="workflow surface"):
            spec.run(workflow=scatter(4))

    def test_workflow_file_spec(self, tmp_path):
        from repro.workflow.patterns import pipeline
        from repro.workflow.serialization import save_workflow

        path = tmp_path / "wf.json"
        save_workflow(pipeline(3, extra_ops=2), path)
        res = small_workflow_spec(workflow_file=str(path)).run()
        assert len(res.result.task_results) == 3

    def test_render_mentions_key_tables(self):
        text = small_workflow_spec().run().render()
        assert "tasks per site" in text
        assert "scheduler" in text


class TestSyntheticSurface:
    def test_spec_run_matches_direct_call_exactly(self):
        spec = ScenarioSpec(
            surface="synthetic",
            strategy=StrategySpec(name="decentralized"),
            ops_per_node=10,
            n_nodes=8,
            seed=5,
        )
        via_spec = spec.run().result
        direct = run_synthetic_workload(
            "decentralized", n_nodes=8, ops_per_node=10, seed=5
        )
        assert via_spec.makespan == direct.makespan
        assert via_spec.node_times == direct.node_times

    def test_render_mentions_throughput(self):
        spec = get_scenario("paper_synthetic").replace(n_nodes=8)
        text = spec.run(quick=True).render()
        assert "throughput" in text
        assert "mean node time by site" in text


class TestWorkloadSurface:
    def test_admission_and_scheduler_resolved_from_spec(self):
        spec = ScenarioSpec(
            surface="workload",
            strategy=StrategySpec(name="decentralized"),
            scheduler=SchedulerSpec(name="load_balanced"),
            workload=WorkloadSpec.uniform(
                3,
                applications=("scatter",),
                ops_per_task=4,
                compute_time=0.1,
                seed=2,
                name="wl",
            ),
            admission="max_in_flight",
            max_in_flight=2,
            n_nodes=8,
            seed=2,
        )
        res = spec.run()
        assert res.surface == "workload"
        assert res.admission == "max_in_flight"
        assert res.scheduler == "load_balanced"
        assert res.result.n_completed == 3
        assert res.result.peak_in_flight <= 2


class TestFaultWiring:
    def test_site_outage_and_flap_fire_under_fair_model(self):
        spec = small_workflow_spec(
            **{"network.bandwidth_model": "fair"},
            faults=(
                FaultSpec(
                    "site_outage",
                    start=0.5,
                    duration=1.0,
                    site="north-europe",
                ),
                FaultSpec(
                    "link_flap",
                    link=("west-europe", "east-us"),
                    times=(0.25,),
                ),
            ),
        )
        res = spec.run()
        kinds = {ev.kind for ev in res.fault_events}
        assert "site-outage-start" in kinds
        assert "link-flap" in kinds
        # The workflow still completes through the faults.
        assert len(res.result.task_results) > 0

    def test_region_outage_by_region_tag(self):
        spec = small_workflow_spec(
            **{"network.bandwidth_model": "fair"},
            faults=(
                FaultSpec(
                    "region_outage",
                    start=0.5,
                    duration=0.5,
                    region="europe",
                ),
            ),
        )
        res = spec.run()
        targets = {
            ev.target
            for ev in res.fault_events
            if ev.kind == "region-outage-start"
        }
        assert targets == {"north-europe,west-europe"}

    def test_latency_spike_under_slots(self):
        spec = small_workflow_spec(
            faults=(
                FaultSpec(
                    "latency_spike",
                    start=0.1,
                    duration=2.0,
                    link=("west-europe", "south-central-us"),
                    factor=5.0,
                ),
            ),
        )
        res = spec.run()
        assert any(
            ev.kind == "latency-spike-start" for ev in res.fault_events
        )

    def test_faults_render_in_report(self):
        spec = small_workflow_spec(
            faults=(
                FaultSpec(
                    "latency_spike",
                    start=0.1,
                    duration=1.0,
                    link=("west-europe", "east-us"),
                ),
            ),
        )
        assert "faults:" in spec.run().render()


class TestTopologyIsolation:
    def test_capped_and_uncapped_variants_share_one_spec(self):
        """The in-place topology mutation footgun is gone at this layer:
        deriving a capped variant and running it must not perturb a
        later run of the uncapped original (each run builds fresh)."""
        base = ScenarioSpec(
            surface="synthetic",
            strategy=StrategySpec(name="decentralized"),
            ops_per_node=10,
            n_nodes=8,
            seed=5,
        )
        before = base.run().result
        capped = base.replace(
            network=NetworkSpec(
                bandwidth_model="fair",
                egress_cap_mb=1.0,
                ingress_cap_mb=1.0,
            )
        )
        capped_res = capped.run().result
        after = base.run().result
        assert after.makespan == before.makespan
        assert after.node_times == before.node_times
        # And the capped run genuinely differed (the caps applied).
        assert capped_res.makespan != before.makespan


class TestSweep:
    def test_sweep_runs_cartesian_grid(self):
        base = ScenarioSpec(
            surface="synthetic",
            ops_per_node=5,
            n_nodes=8,
            seed=1,
        )
        res = run_sweep(
            base,
            {
                "strategy.name": ["centralized", "hybrid"],
                "n_nodes": [4, 8],
            },
        )
        assert len(res.cells) == 4
        combos = {
            (c.overrides["strategy.name"], c.overrides["n_nodes"])
            for c in res.cells
        }
        assert combos == {
            ("centralized", 4),
            ("centralized", 8),
            ("hybrid", 4),
            ("hybrid", 8),
        }
        text = res.render()
        assert "4 combinations" in text
        assert "centralized" in text

    def test_sweep_rejects_empty_axes(self):
        base = get_scenario("paper_synthetic")
        with pytest.raises(ValueError, match="at least one"):
            run_sweep(base, {})
        with pytest.raises(ValueError, match="no values"):
            run_sweep(base, {"n_nodes": []})
