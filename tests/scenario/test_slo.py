"""SLOSpec validation/round-trip and the post-run verdict engine."""

import json

import pytest

from repro.results import ResultStore, scenario_result_to_dict
from repro.results.diff import diff_artifacts
from repro.scenario import (
    ObservabilitySpec,
    ScenarioSpec,
    SLOSpec,
    evaluate_slo,
    get_scenario,
)


def workload_spec(slo, **over):
    return get_scenario("multi_tenant_8").replace(name="slo-test").replace(
        slo=slo, **over
    )


class TestValidation:
    def test_defaults_valid_and_empty(self):
        slo = SLOSpec()
        slo.validate()
        assert slo.empty
        assert not SLOSpec(deadline_s=5.0).empty

    def test_bounds(self):
        with pytest.raises(ValueError, match="deadline_s"):
            SLOSpec(deadline_s=0.0).validate()
        with pytest.raises(ValueError, match="positive"):
            SLOSpec(tenant_deadlines=(("t", -1.0),)).validate()
        with pytest.raises(ValueError, match="repeats"):
            SLOSpec(
                tenant_deadlines=(("t", 1.0), ("t", 2.0))
            ).validate()
        with pytest.raises(ValueError, match="percentile"):
            SLOSpec(latency_targets=(("h", 0.0, 1.0),)).validate()
        with pytest.raises(ValueError, match="percentile"):
            SLOSpec(latency_targets=(("h", 101.0, 1.0),)).validate()
        with pytest.raises(ValueError, match="target"):
            SLOSpec(latency_targets=(("h", 95.0, 0.0),)).validate()
        with pytest.raises(ValueError, match="min_throughput"):
            SLOSpec(min_throughput_ops_s=0.0).validate()

    def test_latency_targets_require_observability(self):
        spec = workload_spec(
            SLOSpec(latency_targets=(("ops.latency_s", 95.0, 1.0),))
        )
        with pytest.raises(ValueError, match="observability"):
            spec.validate()
        spec.replace(
            observability=ObservabilitySpec(enabled=True)
        ).validate()

    def test_tenant_deadlines_are_workload_only(self):
        spec = get_scenario("fanout_bandwidth_aware").replace(
            slo=SLOSpec(tenant_deadlines=(("tenant-00", 5.0),))
        )
        with pytest.raises(ValueError, match="workload"):
            spec.validate()

    def test_unknown_tenant_rejected(self):
        spec = workload_spec(
            SLOSpec(tenant_deadlines=(("nobody", 5.0),))
        )
        with pytest.raises(ValueError, match="unknown tenant"):
            spec.validate()


class TestSerialization:
    def test_round_trip(self):
        spec = workload_spec(
            SLOSpec(
                deadline_s=60.0,
                tenant_deadlines=(("tenant-00", 5.0),),
                latency_targets=(("ops.latency_s", 95.0, 0.5),),
                min_throughput_ops_s=2.0,
            ),
            observability=ObservabilitySpec(enabled=True),
        )
        again = ScenarioSpec.from_dict(
            json.loads(json.dumps(spec.to_dict()))
        )
        assert again == spec
        assert again.slo.tenant_deadlines == (("tenant-00", 5.0),)

    def test_spec_hash_ignores_slo(self):
        """Objectives are a lens, not an experiment input: re-judging a
        stored run must not orphan its artifact key."""
        plain = workload_spec(None)
        judged = workload_spec(SLOSpec(deadline_s=1.0))
        assert plain.spec_hash() == judged.spec_hash()
        assert '"slo"' not in plain.canonical_json()

    def test_to_dict_still_carries_slo(self):
        doc = workload_spec(SLOSpec(deadline_s=9.0)).to_dict()
        assert doc["slo"]["deadline_s"] == 9.0


class TestVerdicts:
    def test_tight_deadline_violated_with_debt_and_first_time(self):
        spec = workload_spec(
            SLOSpec(
                deadline_s=1.0,
                tenant_deadlines=(("tenant-00", 0.5),),
            )
        )
        result = spec.run(quick=True)
        report = result.slo
        assert report is not None
        assert report.status == "violated"
        assert report.n_violated == 2
        assert report.total_debt > 0
        assert report.first_violation_at is not None
        by_rule = {r.rule: r for r in report.rules}
        deadline = by_rule["deadline"]
        assert deadline.status == "violated"
        assert deadline.debt == pytest.approx(result.makespan - 1.0)
        tenant = by_rule["tenant_deadline:tenant-00"]
        assert tenant.status == "violated"
        assert tenant.first_violation_at is not None
        assert "late" in tenant.note
        assert "SLO verdict: violated" in result.render()

    def test_lax_objectives_met(self):
        spec = workload_spec(
            SLOSpec(deadline_s=1e6, min_throughput_ops_s=1e-6)
        )
        report = spec.run(quick=True).slo
        assert report.status == "met"
        assert report.total_debt == 0.0
        assert report.first_violation_at is None

    def test_latency_rule_judged_against_obs_histograms(self):
        spec = workload_spec(
            SLOSpec(latency_targets=(("ops.latency_s", 95.0, 1e-9),)),
            observability=ObservabilitySpec(enabled=True),
        )
        (rule,) = spec.run(quick=True).slo.rules
        assert rule.rule == "latency:ops.latency_s:p95"
        assert rule.status == "violated"
        assert rule.observed > 0

    def test_unevaluable_rules_skip_not_raise(self):
        spec = workload_spec(None)
        result = spec.run(quick=True)
        report = evaluate_slo(
            SLOSpec(latency_targets=(("ops.latency_s", 95.0, 1.0),)),
            result,
        )
        (rule,) = report.rules
        assert rule.status == "skipped"
        assert "not traced" in rule.note
        assert report.status == "skipped"

    def test_no_slo_spec_no_report(self):
        assert workload_spec(None).run(quick=True).slo is None


class TestSweepRanking:
    def test_cells_ranked_by_slo_attainment(self):
        from repro.scenario import run_sweep

        base = workload_spec(SLOSpec(tenant_deadlines=(("tenant-00", 4.0),)))
        sweep = run_sweep(
            base,
            {"max_in_flight": [1, 8]},
            quick=True,
        )
        assert sweep.has_slo()
        ranked = sweep.slo_ranking()
        debts = [c.result.slo.total_debt for c in ranked]
        assert debts == sorted(debts) or [
            c.result.slo.n_violated for c in ranked
        ] == sorted(c.result.slo.n_violated for c in ranked)
        rendered = sweep.render()
        assert "ranked by SLO attainment" in rendered
        assert "SLO" in rendered and "bottleneck" not in rendered

    def test_slo_less_sweep_renders_without_slo_column(self):
        from repro.scenario import get_scenario, run_sweep

        sweep = run_sweep(
            get_scenario("paper_synthetic"),
            {"seed": [0, 1]},
            quick=True,
        )
        assert not sweep.has_slo()
        assert "SLO" not in sweep.render()


class TestPersistence:
    def test_verdict_survives_a_result_store_round_trip(self, tmp_path):
        spec = workload_spec(SLOSpec(deadline_s=1.0))
        result = spec.run(quick=True)
        store = ResultStore(tmp_path)
        key = store.save(result)
        doc = store.load(key)
        assert doc["slo"]["status"] == "violated"
        assert doc["slo"]["total_debt"] > 0
        assert doc["slo"]["first_violation_at"] is not None
        assert doc["slo"]["rules"][0]["rule"] == "deadline"

    def test_diff_carries_slo_and_tolerates_pre_slo_artifacts(self):
        judged = scenario_result_to_dict(
            workload_spec(SLOSpec(deadline_s=1.0)).run(quick=True)
        )
        legacy = scenario_result_to_dict(
            workload_spec(None).run(quick=True)
        )
        diff = diff_artifacts(legacy, judged)
        assert diff.slo["verdict"] == (None, "violated")
        assert "SLO verdicts" in diff.render()
        # two pre-SLO artifacts: the section stays absent entirely
        assert diff_artifacts(legacy, legacy).slo == {}
