"""Parallel sweep contract: jobs=N is bit-for-bit serial, cells isolate failures."""

import json

import pytest

from repro.scenario import get_scenario, run_cells, run_sweep
from repro.scenario.sweep import NONE_LABELS


def _serialized_cells(sweep):
    """Each cell's result payload as canonical JSON (errors as-is)."""
    return [
        json.dumps(c.to_dict()["result"], sort_keys=True)
        if c.ok
        else c.error
        for c in sweep.cells
    ]


class TestParallelEquivalence:
    def test_jobs2_bit_for_bit_equal_to_serial_on_2x2_grid(self):
        base = get_scenario("paper_synthetic")
        axes = {
            "strategy.name": ["centralized", "hybrid"],
            "seed": [0, 1],
        }
        serial = run_sweep(base, axes, quick=True, jobs=1)
        parallel = run_sweep(base, axes, quick=True, jobs=2)
        assert _serialized_cells(serial) == _serialized_cells(parallel)

    @pytest.mark.slow
    def test_jobs4_bit_for_bit_equal_on_8_cell_grid(self):
        base = get_scenario("paper_synthetic")
        axes = {
            "strategy.name": ["centralized", "hybrid"],
            "n_nodes": [4, 8],
            "seed": [0, 1],
        }
        serial = run_sweep(base, axes, quick=True, jobs=1)
        parallel = run_sweep(base, axes, quick=True, jobs=4)
        assert len(serial.cells) == 8
        assert _serialized_cells(serial) == _serialized_cells(parallel)

    def test_parallel_workflow_surface_matches_serial(self):
        # The workflow surface pickles a prebuilt DAG to the workers;
        # serial mode deep-copies it per cell -- same isolation.
        from repro.experiments.scheduler_compare import run_scheduler_compare

        policies = ("locality", "bandwidth_aware")
        serial = run_scheduler_compare(policies=policies, jobs=1)
        parallel = run_scheduler_compare(policies=policies, jobs=2)
        assert serial.makespan == parallel.makespan
        assert serial.wan_bytes == parallel.wan_bytes
        assert serial.tasks_per_site == parallel.tasks_per_site

    def test_jobs_rejects_nonpositive(self):
        base = get_scenario("paper_synthetic")
        with pytest.raises(ValueError, match="jobs"):
            run_sweep(base, {"seed": [0, 1]}, quick=True, jobs=0)
        with pytest.raises(ValueError, match="jobs"):
            run_cells([({}, base)], jobs=-1)


class TestFailureIsolation:
    @pytest.mark.parametrize("jobs", [1, 2])
    def test_one_invalid_override_errors_one_cell_only(self, jobs):
        base = get_scenario("paper_synthetic")
        res = run_sweep(
            base,
            {"strategy.name": ["centralized", "nope"]},
            quick=True,
            jobs=jobs,
        )
        assert len(res.cells) == 2
        ok, bad = res.cells
        assert ok.ok and ok.result is not None
        assert not bad.ok and bad.result is None
        assert "nope" in bad.error
        assert res.ok_cells() == [ok]
        assert res.errored_cells() == [bad]

    def test_runtime_failure_is_captured_per_cell(self):
        # An override that passes replace() but fails at run time:
        # a fair-model-only knob under the slots model.
        base = get_scenario("paper_synthetic")
        res = run_sweep(
            base,
            {"network.egress_cap_mb": [None, 50.0]},
            quick=True,
        )
        assert res.cells[0].ok
        assert not res.cells[1].ok
        assert "egress" in res.cells[1].error

    def test_errored_cells_render_inline(self):
        base = get_scenario("paper_synthetic")
        res = run_sweep(
            base, {"strategy.name": ["centralized", "nope"]}, quick=True
        )
        text = res.render()
        assert "ERROR:" in text
        assert "nope" in text
        # The good cell still shows its makespan.
        assert "centralized" in text


class TestFailureIsolationPersistence:
    """A raising cell mid-sweep must not cost the surviving cells
    their artifacts: every ok cell persists under its spec-hash key,
    the failed cell is reported and writes nothing -- identically in
    serial and parallel mode (the CLI's ``sweep --out`` contract)."""

    AXES = {"strategy.name": ["centralized", "nope", "hybrid"]}

    @pytest.mark.parametrize("jobs", [1, 2])
    def test_surviving_cells_persist_with_spec_hash_keys(
        self, tmp_path, jobs
    ):
        from repro.results import ResultStore

        base = get_scenario("paper_synthetic")
        res = run_sweep(base, self.AXES, quick=True, jobs=jobs)
        assert len(res.cells) == 3
        # The middle cell raised; its neighbours are intact.
        assert [c.ok for c in res.cells] == [True, False, True]
        assert "nope" in res.cells[1].error

        store = ResultStore(tmp_path / "runs")
        for cell in res.ok_cells():
            store.save(cell.result, overrides=cell.overrides)

        assert len(store) == 2
        on_disk = {p.stem for p in store.paths()}
        expected = {
            ResultStore.key_for(c.result.spec) for c in res.ok_cells()
        }
        assert on_disk == expected
        # Keys are derived from the cell's own spec (quick runs carry
        # the quick-reduced spec), so rebuilding the overridden spec
        # round-trips to the persisted payload.
        for cell in res.ok_cells():
            spec = base.replace(**cell.overrides).quick()
            doc = store.lookup(spec)
            assert doc is not None
            assert doc["meta"]["overrides"] == cell.overrides

    def test_failed_cell_key_absent_even_when_spec_is_valid(
        self, tmp_path
    ):
        # A cell can fail at *run* time with a perfectly hashable
        # spec; its key must still be absent from the store.
        from repro.results import ResultStore

        base = get_scenario("paper_synthetic")
        res = run_sweep(
            base,
            {"network.egress_cap_mb": [None, 50.0]},
            quick=True,
        )
        assert [c.ok for c in res.cells] == [True, False]
        store = ResultStore(tmp_path / "runs")
        for cell in res.ok_cells():
            store.save(cell.result, overrides=cell.overrides)
        failed_spec = base.replace(**{"network.egress_cap_mb": 50.0})
        assert store.lookup(failed_spec.quick()) is None
        assert len(store) == 1


class TestNoneLabelRendering:
    def test_none_bandwidth_model_renders_default_name(self):
        base = get_scenario("paper_synthetic")
        res = run_sweep(
            base,
            {"network.bandwidth_model": [None, "fair"]},
            quick=True,
        )
        text = res.render()
        assert "slots" in text
        assert "None" not in text

    def test_none_labels_cover_defaultable_axes(self):
        assert NONE_LABELS["network.bandwidth_model"] == "slots"
        assert NONE_LABELS["scheduler.name"] == "locality"
        assert NONE_LABELS["admission"] == "unbounded"
