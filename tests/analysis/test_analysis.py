"""Tests for the strategy advisor and metrics summarization."""

import pytest

from repro.analysis.advisor import (
    WorkloadProfile,
    profile_workflow,
    recommend_strategy,
)
from repro.analysis.metrics import summarize_ops
from repro.metadata.controller import StrategyName
from repro.metadata.stats import OpKind, OpRecord, OpStats
from repro.util.units import KB, MB
from repro.workflow.applications import buzzflow, montage
from repro.workflow.patterns import pipeline, scatter


def profile(**kw):
    defaults = dict(
        n_sites=4,
        n_nodes=32,
        ops_per_task=1000,
        mean_file_size=200 * KB,
        parallelism_ratio=0.5,
        n_tasks=100,
    )
    defaults.update(kw)
    return WorkloadProfile(**defaults)


class TestAdvisor:
    def test_single_site_centralized(self):
        strat, reasons = recommend_strategy(profile(n_sites=1))
        assert strat == StrategyName.CENTRALIZED
        assert reasons

    def test_small_scale_centralized(self):
        strat, _ = recommend_strategy(
            profile(n_nodes=16, ops_per_task=100, n_tasks=50)
        )
        assert strat == StrategyName.CENTRALIZED

    def test_large_files_low_ops_replicated(self):
        strat, _ = recommend_strategy(
            profile(
                mean_file_size=200 * MB,
                ops_per_task=50,
                n_nodes=64,
                n_tasks=400,
            )
        )
        assert strat == StrategyName.REPLICATED

    def test_parallel_small_files_decentralized(self):
        strat, _ = recommend_strategy(
            profile(parallelism_ratio=0.9, n_nodes=128)
        )
        assert strat == StrategyName.DECENTRALIZED

    def test_pipeline_small_files_hybrid(self):
        strat, _ = recommend_strategy(
            profile(parallelism_ratio=0.05, n_nodes=128)
        )
        assert strat == StrategyName.HYBRID

    def test_profile_validation(self):
        with pytest.raises(ValueError):
            profile(n_sites=0)
        with pytest.raises(ValueError):
            profile(parallelism_ratio=1.5)


class TestProfileWorkflow:
    def test_montage_is_parallel(self):
        wf = montage(ops_per_task=1000)
        p = profile_workflow(wf, n_sites=4, n_nodes=32)
        assert p.parallelism_ratio > 0.5
        strat, _ = recommend_strategy(p)
        assert strat == StrategyName.DECENTRALIZED

    def test_buzzflow_is_near_pipeline(self):
        wf = buzzflow(ops_per_task=1000)
        p = profile_workflow(wf, n_sites=4, n_nodes=32)
        assert p.parallelism_ratio < 0.1
        strat, _ = recommend_strategy(p)
        assert strat == StrategyName.HYBRID

    def test_empty_workflow_rejected(self):
        from repro.workflow.dag import Workflow

        with pytest.raises(ValueError):
            profile_workflow(Workflow("empty"), n_sites=4, n_nodes=8)


class TestMetrics:
    def test_summarize(self):
        stats = OpStats()
        stats.add(
            OpRecord(OpKind.WRITE, "k", "s", 0.0, 0.1, local=True)
        )
        stats.add(
            OpRecord(
                OpKind.READ, "k", "s", 0.1, 0.4, local=False, retries=2
            )
        )
        m = summarize_ops(stats)
        assert m.total_ops == 2
        assert m.makespan == pytest.approx(0.4)
        assert m.mean_write_latency == pytest.approx(0.1)
        assert m.mean_read_latency == pytest.approx(0.3)
        assert m.local_fraction == 0.5
        assert m.total_retries == 2
        assert m.as_dict()["throughput"] == pytest.approx(5.0)

    def test_empty_stats(self):
        m = summarize_ops(OpStats())
        assert m.total_ops == 0
        assert m.throughput == 0.0
