"""Tests for the registry runtime monitor."""

import pytest

from repro.analysis.monitor import RegistryMonitor
from repro.cloud.deployment import Deployment
from repro.cloud.presets import azure_4dc_topology
from repro.experiments.synthetic import run_synthetic_workload
from repro.metadata.controller import ArchitectureController
from repro.metadata.entry import RegistryEntry


@pytest.fixture
def dep():
    return Deployment(
        topology=azure_4dc_topology(jitter=False), n_nodes=8, seed=51
    )


class TestRegistryMonitor:
    def test_samples_on_cadence(self, dep, fast_config):
        ctrl = ArchitectureController(
            dep, strategy="centralized", config=fast_config
        )
        mon = RegistryMonitor(dep.env, ctrl.strategy, interval=0.5)

        def flow():
            yield dep.env.timeout(2.4)

        dep.env.run(until=dep.env.process(flow()))
        mon.stop()
        ctrl.shutdown()
        assert 4 <= len(mon) <= 6
        assert mon.samples[0].at == 0.0

    def test_detects_queue_buildup(self, dep, fast_config):
        """Hammering one instance shows up as queue growth."""
        ctrl = ArchitectureController(
            dep, strategy="centralized", config=fast_config
        )
        strat = ctrl.strategy
        mon = RegistryMonitor(dep.env, strat, interval=0.002)

        def client(i):
            for j in range(10):
                yield from strat.write(
                    "west-europe", RegistryEntry(key=f"c{i}-{j}")
                )

        procs = [dep.env.process(client(i)) for i in range(6)]
        from repro.sim import AllOf

        dep.env.run(until=AllOf(dep.env, procs))
        mon.stop()
        ctrl.shutdown()
        assert mon.peak_queue_length(strat.home_site) >= 2
        assert mon.saturation_onset(strat.home_site, threshold=1) is not None

    def test_backlog_tracks_hybrid_pump(self, dep, fast_config):
        fast_config.hybrid_sync_replication = False
        fast_config.replication_flush_interval = 1.0  # slow pump
        ctrl = ArchitectureController(dep, strategy="hybrid", config=fast_config)
        strat = ctrl.strategy
        mon = RegistryMonitor(dep.env, strat, interval=0.05)

        def flow():
            for i in range(10):
                yield from strat.write(
                    "west-europe", RegistryEntry(key=f"k{i}")
                )
            yield dep.env.timeout(0.2)

        dep.env.run(until=dep.env.process(flow()))
        mon.stop()
        ctrl.shutdown()
        assert mon.peak_backlog() > 0

    def test_empty_monitor_safe(self, dep, fast_config):
        ctrl = ArchitectureController(
            dep, strategy="centralized", config=fast_config
        )
        mon = RegistryMonitor(dep.env, ctrl.strategy, interval=1.0)
        mon.stop()
        ctrl.shutdown()
        assert mon.peak_queue_length() == 0
        assert mon.mean_backlog() == 0.0
        assert mon.saturation_onset("west-europe") is None

    def test_invalid_interval(self, dep, fast_config):
        ctrl = ArchitectureController(
            dep, strategy="centralized", config=fast_config
        )
        with pytest.raises(ValueError):
            RegistryMonitor(dep.env, ctrl.strategy, interval=0)
        ctrl.shutdown()
