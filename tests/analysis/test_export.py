"""Tests for JSON export of results."""

import json

import pytest

from repro.analysis.export import (
    export_json,
    ops_to_records,
    workflow_result_to_dict,
)
from repro.cloud.deployment import Deployment
from repro.cloud.presets import azure_4dc_topology
from repro.metadata.controller import ArchitectureController
from repro.workflow.engine import WorkflowEngine
from repro.workflow.patterns import pipeline


@pytest.fixture
def result(fast_config):
    dep = Deployment(
        topology=azure_4dc_topology(jitter=False), n_nodes=4, seed=71
    )
    ctrl = ArchitectureController(dep, strategy="hybrid", config=fast_config)
    engine = WorkflowEngine(dep, ctrl.strategy)
    res = engine.run(pipeline(3, compute_time=0.05, extra_ops=4))
    ctrl.shutdown()
    return res


class TestExport:
    def test_workflow_result_dict_shape(self, result):
        doc = workflow_result_to_dict(result)
        assert doc["workflow"] == "pipeline"
        assert doc["strategy"] == "hybrid"
        assert doc["makespan"] > 0
        assert len(doc["tasks"]) == 3
        assert "op_metrics" in doc
        assert "ops" not in doc

    def test_include_full_trace(self, result):
        doc = workflow_result_to_dict(result, include_ops=True)
        assert len(doc["ops"]) == len(result.ops.records)
        first = doc["ops"][0]
        assert {"kind", "site", "latency", "local"} <= set(first)

    def test_ops_limit(self, result):
        assert len(ops_to_records(result.ops, limit=2)) == 2

    def test_export_json_file(self, result, tmp_path):
        path = tmp_path / "run.json"
        export_json(result, path)
        doc = json.loads(path.read_text())
        assert doc["workflow"] == "pipeline"

    def test_export_plain_document(self, tmp_path):
        path = tmp_path / "doc.json"
        export_json({"a": [1, 2, 3]}, path)
        assert json.loads(path.read_text()) == {"a": [1, 2, 3]}
