"""Validate the simulator against analytic queueing theory.

The registry is a single-server queue fed by a closed client
population; the machine-repairman model predicts its throughput.  The
DES must agree with theory within modest tolerance -- this is the
simulation-credibility test for the whole reproduction.
"""

import pytest

from repro.analysis.queueing import (
    closed_network_throughput,
    mm1_mean_wait,
    mm1_utilization,
    saturation_point,
    throughput_upper_bound,
)
from repro.metadata.config import MetadataConfig
from repro.metadata.registry import MetadataRegistry
from repro.sim import AllOf, Environment


class TestFormulas:
    def test_mm1_utilization(self):
        assert mm1_utilization(100, 0.005) == pytest.approx(0.5)

    def test_mm1_wait_explodes_at_saturation(self):
        assert mm1_mean_wait(100, 0.005) == pytest.approx(0.01)
        assert mm1_mean_wait(300, 0.005) == float("inf")

    def test_upper_bound_two_regimes(self):
        # Client-bound: 4 clients, 0.1 s think, 0.001 s service.
        assert throughput_upper_bound(4, 0.1, 0.001) == pytest.approx(
            4 / 0.101
        )
        # Server-bound: 1000 clients.
        assert throughput_upper_bound(1000, 0.1, 0.001) == pytest.approx(
            1000.0
        )

    def test_mva_monotone_in_clients(self):
        prev = 0.0
        for n in (1, 2, 4, 8, 16, 32):
            x, _ = closed_network_throughput(n, 0.05, 0.002)
            assert x > prev
            prev = x

    def test_mva_approaches_server_cap(self):
        x, _ = closed_network_throughput(500, 0.05, 0.002)
        assert x == pytest.approx(1 / 0.002, rel=0.02)

    def test_mva_single_client(self):
        x, r = closed_network_throughput(1, 0.1, 0.01)
        assert x == pytest.approx(1 / 0.11)
        assert r == pytest.approx(0.01)

    def test_saturation_point(self):
        assert saturation_point(0.1, 0.003) == pytest.approx(103 / 3)

    def test_validation(self):
        with pytest.raises(ValueError):
            mm1_utilization(-1, 0.01)
        with pytest.raises(ValueError):
            closed_network_throughput(0, 0.1, 0.01)
        with pytest.raises(ValueError):
            throughput_upper_bound(4, 0.1, 0)


class TestSimulatorAgreement:
    """The DES registry matches the machine-repairman prediction."""

    @pytest.mark.parametrize("n_clients", [2, 8, 24])
    def test_closed_loop_throughput_matches_mva(self, n_clients):
        service_time = 0.004
        think_time = 0.040
        horizon = 60.0

        env = Environment()
        cfg = MetadataConfig(
            service_time=service_time, client_overhead=0.0
        )
        registry = MetadataRegistry(env, "site", cfg)
        rngs = __import__(
            "repro.util.rng", fromlist=["RngStreams"]
        ).RngStreams(seed=9)
        completed = [0]

        def client(i):
            rng = rngs.get(f"client-{i}")
            while env.now < horizon:
                # Exponential think time (the MVA assumption).
                yield env.timeout(float(rng.exponential(think_time)))
                yield from registry.serve_get("key")
                completed[0] += 1

        for i in range(n_clients):
            env.process(client(i))
        env.run(until=horizon)

        measured = completed[0] / horizon
        predicted, _ = closed_network_throughput(
            n_clients, think_time, service_time
        )
        # Deterministic service vs exponential-service MVA: expect
        # agreement within ~15 % (deterministic service queues less).
        assert measured == pytest.approx(predicted, rel=0.15)

    def test_saturated_server_hits_service_cap(self):
        service_time = 0.01
        env = Environment()
        cfg = MetadataConfig(service_time=service_time, client_overhead=0.0)
        registry = MetadataRegistry(env, "site", cfg)
        done = [0]
        horizon = 20.0

        def hammer():
            while env.now < horizon:
                yield from registry.serve_get("k")
                done[0] += 1

        for _ in range(16):  # way past saturation, zero think time
            env.process(hammer())
        env.run(until=horizon)
        measured = done[0] / horizon
        assert measured == pytest.approx(1 / service_time, rel=0.02)
