"""Close the loop: the Section VII advisor's picks must actually win.

For each workload family the advisor has an opinion about, run the
workload under the recommended strategy and under the centralized
baseline, and check the recommendation is at least competitive -- the
empirical backing for the best-match analysis.
"""

import pytest

from repro.analysis.advisor import profile_workflow, recommend_strategy
from repro.cloud.deployment import Deployment
from repro.cloud.presets import azure_4dc_topology
from repro.metadata.config import MetadataConfig
from repro.metadata.controller import ArchitectureController, StrategyName
from repro.workflow.engine import WorkflowEngine
from repro.workflow.patterns import pipeline, scatter


def run_under(strategy, wf_builder, seed=111):
    dep = Deployment(
        topology=azure_4dc_topology(jitter=False), n_nodes=16, seed=seed
    )
    cfg = MetadataConfig(
        home_site="east-us",
        client_overhead=0.005,
        service_time=0.002,
        sync_period=0.5,
        replication_flush_interval=0.1,
    )
    ctrl = ArchitectureController(dep, strategy=strategy, config=cfg)
    engine = WorkflowEngine(dep, ctrl.strategy, locality_scheduling=True)
    res = engine.run(wf_builder())
    ctrl.shutdown()
    return res


class TestAdvisorEmpirically:
    def test_pipeline_recommendation_wins(self):
        """Metadata-heavy pipeline -> hybrid, and hybrid beats baseline."""
        builder = lambda: pipeline(8, compute_time=0.2, extra_ops=800)
        wf = builder()
        strategy, _ = recommend_strategy(
            profile_workflow(wf, n_sites=4, n_nodes=16)
        )
        assert strategy == StrategyName.HYBRID
        recommended = run_under(strategy, builder)
        baseline = run_under(StrategyName.CENTRALIZED, builder)
        assert recommended.makespan < baseline.makespan

    @pytest.mark.slow
    def test_parallel_recommendation_wins(self):
        """Metadata-heavy scatter -> decentralized, and it beats baseline."""
        builder = lambda: scatter(24, compute_time=0.2, extra_ops=700)
        wf = builder()
        strategy, _ = recommend_strategy(
            profile_workflow(wf, n_sites=4, n_nodes=16)
        )
        assert strategy == StrategyName.DECENTRALIZED
        recommended = run_under(strategy, builder)
        baseline = run_under(StrategyName.CENTRALIZED, builder)
        assert recommended.makespan < baseline.makespan

    def test_small_scale_centralized_is_fine(self):
        """Light workload -> centralized recommended; decentralizing
        buys only seconds -- the paper's "acceptable choice" claim is
        about *absolute* gain ("slightly more than 1 minute in the best
        case, which is rather low")."""
        builder = lambda: pipeline(6, compute_time=0.5, extra_ops=40)
        wf = builder()
        strategy, _ = recommend_strategy(
            profile_workflow(wf, n_sites=4, n_nodes=16)
        )
        assert strategy == StrategyName.CENTRALIZED
        central = run_under(StrategyName.CENTRALIZED, builder)
        hybrid = run_under(StrategyName.HYBRID, builder)
        assert central.makespan - hybrid.makespan < 60.0
