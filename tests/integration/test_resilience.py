"""Integration: fault injection against live workloads.

Exercises the resilience story end to end -- failures land *while* the
metadata service is under load, and the run must still complete with
correct results.
"""

import pytest

from repro.cloud.deployment import Deployment
from repro.cloud.faults import (
    CacheFailureInjector,
    LatencySpikeInjector,
    LinkFlapInjector,
    SiteOutage,
)
from repro.cloud.presets import azure_4dc_topology
from repro.metadata.controller import ArchitectureController
from repro.util.units import MB
from repro.workflow.engine import WorkflowEngine
from repro.workflow.patterns import scatter


@pytest.fixture
def dep():
    return Deployment(
        topology=azure_4dc_topology(jitter=False), n_nodes=8, seed=61
    )


class TestWorkflowUnderFaults:
    def test_workflow_survives_cache_failures(self, dep, fast_config):
        ctrl = ArchitectureController(dep, strategy="hybrid", config=fast_config)
        engine = WorkflowEngine(dep, ctrl.strategy)
        injector = CacheFailureInjector(
            dep.env,
            ctrl.strategy.registries,
            schedule=[(0.2, "west-europe"), (0.4, "east-us")],
        )
        res = engine.run(scatter(10, compute_time=0.1, extra_ops=6))
        ctrl.shutdown()
        assert len(res.task_results) == 11
        assert len(injector.events) == 2
        # Both failed-over caches are consistent again.
        for site in ("west-europe", "east-us"):
            cache = ctrl.strategy.registries[site].cache
            assert cache.failovers == 1
            assert cache.is_consistent_with_replica()

    def test_workflow_survives_latency_spike(self, dep, fast_config):
        ctrl = ArchitectureController(
            dep, strategy="decentralized", config=fast_config
        )
        engine = WorkflowEngine(dep, ctrl.strategy)
        spike = LatencySpikeInjector(
            dep.env,
            dep.topology,
            "west-europe",
            "east-us",
            start=0.1,
            duration=1.0,
            factor=20.0,
        )
        res = engine.run(scatter(8, compute_time=0.1, extra_ops=4))
        ctrl.shutdown()
        assert len(res.task_results) == 9
        # The spike window closed and the link healed.
        kinds = [e.kind for e in spike.events]
        assert kinds == ["latency-spike-start", "latency-spike-end"]
        assert dep.topology.latency("west-europe", "east-us") == pytest.approx(
            0.040
        )

    def test_spike_slows_affected_runs(self, fast_config):
        """The same workload takes longer with a mid-run latency spike."""

        def run(with_spike):
            dep = Deployment(
                topology=azure_4dc_topology(jitter=False), n_nodes=8, seed=62
            )
            ctrl = ArchitectureController(
                dep, strategy="centralized", config=fast_config
            )
            engine = WorkflowEngine(
                dep, ctrl.strategy, locality_scheduling=False
            )
            if with_spike:
                LatencySpikeInjector(
                    dep.env,
                    dep.topology,
                    "west-europe",
                    "east-us",
                    start=0.05,
                    duration=30.0,
                    factor=25.0,
                )
            res = engine.run(scatter(10, compute_time=0.05, extra_ops=8))
            ctrl.shutdown()
            return res.makespan

        assert run(True) > run(False)

    def test_site_outage_delays_but_completes(self, dep, fast_config):
        ctrl = ArchitectureController(
            dep, strategy="centralized", config=fast_config
        )
        engine = WorkflowEngine(dep, ctrl.strategy)
        SiteOutage(
            dep.env,
            ctrl.strategy.registry,
            start=0.05,
            duration=2.0,
        )
        res = engine.run(scatter(6, compute_time=0.05, extra_ops=4))
        ctrl.shutdown()
        assert len(res.task_results) == 7
        # The outage window is visible in the makespan.
        assert res.makespan >= 2.0


def _fair_dep(seed=61, n_nodes=8):
    return Deployment(
        topology=azure_4dc_topology(jitter=False),
        n_nodes=n_nodes,
        seed=seed,
        bandwidth_model="fair",
    )


def _run_scatter_with_outage(duration, fast_config, start=0.3):
    """One fair-model scatter run with a mid-provisioning site outage.

    Bulky outputs keep WAN flows in flight for seconds, so the outage
    reliably lands mid-transfer; west-europe hosts workers (round-robin
    placement), so flows into or out of it are active at the cut.
    Returns ``(result, network_stats, outage)``.
    """
    dep = _fair_dep()
    ctrl = ArchitectureController(dep, strategy="hybrid", config=fast_config)
    engine = WorkflowEngine(dep, ctrl.strategy)
    outage = (
        SiteOutage(
            dep.env,
            start=start,
            duration=duration,
            network=dep.network,
            site="west-europe",
        )
        if duration
        else None
    )
    res = engine.run(
        scatter(8, compute_time=0.05, extra_ops=2, file_size=30 * MB)
    )
    ctrl.shutdown()
    return res, dep.network.stats, outage


class TestFairModelFlowTeardown:
    """Acceptance: a SiteOutage during in-flight fair-model transfers
    aborts the flows, the storage layer retries, the workflow still
    completes, and the damage is visible in the NetworkStats abort and
    retry counters."""

    def test_outage_aborts_retries_and_completes(self, fast_config):
        res, stats, outage = _run_scatter_with_outage(3.0, fast_config)
        assert len(res.task_results) == 9  # split + 8 workers
        assert outage.aborted_flows >= 1
        assert stats.aborted_transfers >= 1
        assert stats.aborted_bytes > 0
        assert stats.retried_transfers >= 1
        assert stats.retried_bytes > 0
        # Every abort was eventually recovered by a retry.
        assert stats.retried_transfers >= stats.aborted_transfers

    def test_makespan_degrades_monotonically_with_outage_duration(
        self, fast_config
    ):
        makespans = [
            _run_scatter_with_outage(d, fast_config)[0].makespan
            for d in (0, 1.0, 3.0, 6.0)
        ]
        assert makespans == sorted(makespans), makespans
        # And the longest outage visibly dominates the fault-free run.
        assert makespans[-1] > makespans[0] + 3.0

    def test_link_flap_mid_workflow_recovers(self, fast_config):
        dep = _fair_dep()
        ctrl = ArchitectureController(
            dep, strategy="hybrid", config=fast_config
        )
        engine = WorkflowEngine(dep, ctrl.strategy)
        flap = LinkFlapInjector(
            dep.env,
            dep.network,
            "west-europe",
            "east-us",
            times=[0.4, 0.8],
        )
        res = engine.run(
            scatter(8, compute_time=0.05, extra_ops=2, file_size=30 * MB)
        )
        ctrl.shutdown()
        assert len(res.task_results) == 9
        assert len(flap.events) == 2
        # Any torn-down transfer was re-issued and the data arrived.
        assert dep.network.stats.retried_transfers >= (
            dep.network.stats.aborted_transfers
        )
