"""Integration: fault injection against live workloads.

Exercises the resilience story end to end -- failures land *while* the
metadata service is under load, and the run must still complete with
correct results.
"""

import pytest

from repro.cloud.deployment import Deployment
from repro.cloud.faults import (
    CacheFailureInjector,
    LatencySpikeInjector,
    SiteOutage,
)
from repro.cloud.presets import azure_4dc_topology
from repro.metadata.controller import ArchitectureController
from repro.workflow.engine import WorkflowEngine
from repro.workflow.patterns import scatter


@pytest.fixture
def dep():
    return Deployment(
        topology=azure_4dc_topology(jitter=False), n_nodes=8, seed=61
    )


class TestWorkflowUnderFaults:
    def test_workflow_survives_cache_failures(self, dep, fast_config):
        ctrl = ArchitectureController(dep, strategy="hybrid", config=fast_config)
        engine = WorkflowEngine(dep, ctrl.strategy)
        injector = CacheFailureInjector(
            dep.env,
            ctrl.strategy.registries,
            schedule=[(0.2, "west-europe"), (0.4, "east-us")],
        )
        res = engine.run(scatter(10, compute_time=0.1, extra_ops=6))
        ctrl.shutdown()
        assert len(res.task_results) == 11
        assert len(injector.events) == 2
        # Both failed-over caches are consistent again.
        for site in ("west-europe", "east-us"):
            cache = ctrl.strategy.registries[site].cache
            assert cache.failovers == 1
            assert cache.is_consistent_with_replica()

    def test_workflow_survives_latency_spike(self, dep, fast_config):
        ctrl = ArchitectureController(
            dep, strategy="decentralized", config=fast_config
        )
        engine = WorkflowEngine(dep, ctrl.strategy)
        spike = LatencySpikeInjector(
            dep.env,
            dep.topology,
            "west-europe",
            "east-us",
            start=0.1,
            duration=1.0,
            factor=20.0,
        )
        res = engine.run(scatter(8, compute_time=0.1, extra_ops=4))
        ctrl.shutdown()
        assert len(res.task_results) == 9
        # The spike window closed and the link healed.
        kinds = [e.kind for e in spike.events]
        assert kinds == ["latency-spike-start", "latency-spike-end"]
        assert dep.topology.latency("west-europe", "east-us") == pytest.approx(
            0.040
        )

    def test_spike_slows_affected_runs(self, fast_config):
        """The same workload takes longer with a mid-run latency spike."""

        def run(with_spike):
            dep = Deployment(
                topology=azure_4dc_topology(jitter=False), n_nodes=8, seed=62
            )
            ctrl = ArchitectureController(
                dep, strategy="centralized", config=fast_config
            )
            engine = WorkflowEngine(
                dep, ctrl.strategy, locality_scheduling=False
            )
            if with_spike:
                LatencySpikeInjector(
                    dep.env,
                    dep.topology,
                    "west-europe",
                    "east-us",
                    start=0.05,
                    duration=30.0,
                    factor=25.0,
                )
            res = engine.run(scatter(10, compute_time=0.05, extra_ops=8))
            ctrl.shutdown()
            return res.makespan

        assert run(True) > run(False)

    def test_site_outage_delays_but_completes(self, dep, fast_config):
        ctrl = ArchitectureController(
            dep, strategy="centralized", config=fast_config
        )
        engine = WorkflowEngine(dep, ctrl.strategy)
        SiteOutage(
            dep.env,
            ctrl.strategy.registry,
            start=0.05,
            duration=2.0,
        )
        res = engine.run(scatter(6, compute_time=0.05, extra_ops=4))
        ctrl.shutdown()
        assert len(res.task_results) == 7
        # The outage window is visible in the makespan.
        assert res.makespan >= 2.0
