"""Integration tests: full multi-site workflow runs across subsystems.

These exercise the complete stack -- DES kernel, cloud network, metadata
strategies (with their background agents/pumps), storage transfers and
the workflow engine -- on small but structurally faithful scenarios.
"""

import pytest

from repro.cloud.deployment import Deployment
from repro.cloud.presets import azure_4dc_topology, make_topology
from repro.metadata.config import MetadataConfig
from repro.metadata.controller import ArchitectureController, StrategyName
from repro.metadata.entry import RegistryEntry
from repro.workflow.applications import buzzflow, montage
from repro.workflow.engine import WorkflowEngine
from repro.workflow.patterns import pipeline, scatter


@pytest.fixture
def dep():
    return Deployment(
        topology=azure_4dc_topology(jitter=False), n_nodes=8, seed=21
    )


class TestFullWorkflowRuns:
    @pytest.mark.parametrize("strategy", StrategyName.all())
    def test_miniature_montage_all_strategies(
        self, dep, fast_config, strategy
    ):
        ctrl = ArchitectureController(dep, strategy=strategy, config=fast_config)
        engine = WorkflowEngine(dep, ctrl.strategy)
        wf = montage(
            ops_per_task=10, compute_time=0.05, n_parallel=12, n_merges=2
        )
        res = engine.run(wf)
        ctrl.shutdown()
        assert len(res.task_results) == 16
        # The final mosaic exists and its metadata resolves everywhere
        # (after propagation drains).
        assert engine.transfer.locations_of("montage/mosaic")

    def test_miniature_buzzflow_hybrid(self, dep, fast_config):
        ctrl = ArchitectureController(dep, strategy="dr", config=fast_config)
        engine = WorkflowEngine(dep, ctrl.strategy)
        wf = buzzflow(ops_per_task=8, compute_time=0.05, width=2, n_stages=5)
        res = engine.run(wf)
        ctrl.shutdown()
        assert len(res.task_results) == 10
        # Near-pipeline + locality: hybrid reads mostly resolve locally.
        assert ctrl.strategy.local_hit_ratio > 0.5

    def test_metadata_locations_match_data_locations(self, dep, fast_config):
        """The registry's location sets must reflect where data really is."""
        ctrl = ArchitectureController(
            dep, strategy="decentralized", config=fast_config
        )
        engine = WorkflowEngine(dep, ctrl.strategy)
        wf = scatter(8, compute_time=0.05)
        engine.run(wf)
        ctrl.shutdown()
        for site, store in engine.transfer.stores.items():
            for f in store:
                env = dep.env

                def check(name=f.name):
                    entry = yield from ctrl.strategy.read(
                        "west-europe", name, require_found=True
                    )
                    return entry

                entry = env.run(until=env.process(check()))
                # Every site holding the file is recorded (transfers may
                # add locations metadata does not know about, but the
                # producer site always is known).
                assert entry.locations


class TestStrategySwitchMidStream:
    def test_switch_between_workflows(self, dep, fast_config):
        ctrl = ArchitectureController(
            dep, strategy="centralized", config=fast_config
        )
        engine = WorkflowEngine(dep, ctrl.strategy)
        res1 = engine.run(pipeline(3, compute_time=0.05, name="w1"))

        def switch():
            yield from ctrl.switch("hybrid", migrate=True)

        dep.env.run(until=dep.env.process(switch()))
        engine2 = WorkflowEngine(dep, ctrl.strategy)
        res2 = engine2.run(pipeline(3, compute_time=0.05, name="w2"))
        ctrl.shutdown()
        assert res1.strategy == "centralized"
        assert res2.strategy == "hybrid"


class TestFailureInjection:
    def test_primary_cache_failure_is_transparent(self, dep, fast_config):
        """The HA cache tier hides a primary failure (Section III-B)."""
        ctrl = ArchitectureController(dep, strategy="hybrid", config=fast_config)
        strat = ctrl.strategy
        env = dep.env

        def flow():
            for i in range(5):
                yield from strat.write(
                    "west-europe", RegistryEntry(key=f"k{i}")
                )
            # Kill the primary at the busiest instance.
            strat.registries["west-europe"].cache.fail_primary()
            got = yield from strat.read("west-europe", "k3", require_found=True)
            yield from strat.write("west-europe", RegistryEntry(key="post"))
            post = yield from strat.read(
                "west-europe", "post", require_found=True
            )
            return got, post

        got, post = env.run(until=env.process(flow()))
        ctrl.shutdown()
        assert got is not None and post is not None
        assert strat.registries["west-europe"].cache.failovers == 1


class TestEventualConsistencyConvergence:
    @pytest.mark.parametrize("strategy", ["replicated", "hybrid"])
    def test_all_writes_eventually_globally_visible(
        self, dep, fast_config, strategy
    ):
        """The core eventual-consistency guarantee (Section III-D)."""
        ctrl = ArchitectureController(dep, strategy=strategy, config=fast_config)
        strat = ctrl.strategy
        env = dep.env
        keys = [f"file-{i}" for i in range(20)]

        def flow():
            for i, key in enumerate(keys):
                site = dep.sites[i % 4]
                yield from strat.write(site, RegistryEntry(key=key))
            yield from strat.flush()

        env.run(until=env.process(flow()))
        ctrl.shutdown()
        if strategy == "replicated":
            # Every instance holds every entry.
            for reg in strat.registries.values():
                for key in keys:
                    assert key in reg
        else:
            # Every entry resolvable from its DHT home.
            for key in keys:
                assert key in strat.registries[strat.home_of(key)]

    def test_consistency_window_measured(self, dep, fast_config):
        ctrl = ArchitectureController(
            dep, strategy="replicated", config=fast_config
        )
        strat = ctrl.strategy
        env = dep.env

        def flow():
            for i in range(5):
                yield from strat.write(
                    "east-us", RegistryEntry(key=f"w{i}")
                )
            yield from strat.flush()

        env.run(until=env.process(flow()))
        ctrl.shutdown()
        assert len(strat.tracker.windows) == 5
        # The inconsistency window is bounded by ~2 sync periods.
        assert strat.tracker.max_window() <= fast_config.sync_period * 4


class TestSingleSiteDeployment:
    def test_everything_local_single_site(self, fast_config):
        """A one-site cloud degenerates gracefully: all strategies local."""
        dep = Deployment(
            topology=make_topology(["solo"]), n_nodes=4, seed=2
        )
        ctrl = ArchitectureController(
            dep, strategy="decentralized", config=fast_config
        )
        engine = WorkflowEngine(dep, ctrl.strategy)
        res = engine.run(pipeline(3, compute_time=0.05, extra_ops=4))
        ctrl.shutdown()
        assert all(r.local for r in ctrl.strategy.stats.records)
        assert res.makespan > 0
