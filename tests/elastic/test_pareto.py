"""The cost-vs-SLO Pareto acceptance test (fast profile).

The ``autoscale_pareto`` scenario is the control plane's headline
claim: against the same burst-plus-stragglers workload an autoscaled
4->16 fleet must match a statically peak-provisioned 16-node fleet on
deadline attainment while paying measurably fewer vm-seconds, and must
beat the static 4-node fleet on attainment.  Static baselines are the
same spec with elasticity switched off, so all three variants share
the workload, seed and topology; static fleets bill ``n_nodes *
makespan`` vm-seconds (every VM runs the whole window).
"""

import pytest

from repro.scenario import ElasticitySpec, get_scenario

DEADLINE_S = 35.0  # mirrors the scenario's per-tenant SLOSpec deadlines


def _attainment(res):
    records = res.result.records
    assert records, "the pareto workload must complete instances"
    met = sum(1 for r in records if r.response_time <= DEADLINE_S)
    return met / len(records)


@pytest.fixture(scope="module")
def variants():
    auto_spec = get_scenario("autoscale_pareto")
    assert auto_spec.elasticity.enabled
    peak_spec = auto_spec.replace(n_nodes=16, elasticity=ElasticitySpec())
    low_spec = auto_spec.replace(elasticity=ElasticitySpec())
    return {
        "auto": auto_spec.run(quick=True),
        "static_peak": peak_spec.run(quick=True),
        "static_low": low_spec.run(quick=True),
    }


def test_autoscaler_matches_peak_attainment(variants):
    assert _attainment(variants["auto"]) >= _attainment(
        variants["static_peak"]
    )


def test_autoscaler_pays_fewer_vm_seconds_than_static_peak(variants):
    auto = variants["auto"]
    peak = variants["static_peak"]
    assert auto.elastic is not None
    static_vm_seconds = 16 * peak.makespan
    # "Measurably lower": well past float noise, not a squeaker.
    assert auto.elastic.vm_seconds < 0.9 * static_vm_seconds


def test_autoscaler_beats_static_low_on_attainment(variants):
    assert _attainment(variants["auto"]) > _attainment(
        variants["static_low"]
    )


def test_static_baselines_carry_no_elastic_report(variants):
    assert variants["static_peak"].elastic is None
    assert variants["static_low"].elastic is None


def test_autoscaler_priced_cost_reflects_site_class_rates(variants):
    report = variants["auto"].elastic
    # The europe class bills 1.5x, so priced cost must exceed raw
    # vm-seconds (some capacity always lands in a europe site) but
    # stay under the all-europe ceiling.
    assert report.vm_seconds < report.cost < 1.5 * report.vm_seconds
