"""Unit tests for the elasticity decision kernels (repro.elastic.policies)."""

import pytest

from repro.elastic import (
    ELASTICITY_NAMES,
    FleetView,
    PredictivePolicy,
    SLODebtPolicy,
    ScaleAction,
    SignalSnapshot,
    ThresholdPolicy,
    make_elasticity_policy,
)
from repro.scenario import ElasticitySpec


def _fleet(vms, pending=None, draining=None, min_vms=1, max_vms=8):
    return FleetView(
        vms=vms,
        pending=pending or {},
        draining=draining or {},
        min_vms=min_vms,
        max_vms=max_vms,
    )


def _snap(now=10.0, site_load=None, **kw):
    return SignalSnapshot(now=now, site_load=site_load or {}, **kw)


def _threshold_spec(**kw):
    return ElasticitySpec(enabled=True, policy="threshold", **kw)


class TestScaleAction:
    def test_zero_delta_rejected(self):
        with pytest.raises(ValueError, match="non-zero"):
            ScaleAction("east-us", 0)


class TestRegistry:
    def test_unknown_policy_lists_choices(self):
        with pytest.raises(ValueError, match="threshold"):
            make_elasticity_policy("nope", _threshold_spec())

    @pytest.mark.parametrize("name", ELASTICITY_NAMES)
    def test_every_registered_policy_instantiates(self, name):
        policy = make_elasticity_policy(name, ElasticitySpec(enabled=True, policy=name))
        assert policy.name == name


class TestClampedDelta:
    def test_scale_up_clamped_against_effective_fleet(self):
        # 2 placeable + 1 already ordered: only one slot left under max 4.
        policy = ThresholdPolicy(_threshold_spec(max_vms_per_site=4))
        fleet = _fleet({"a": 2}, pending={"a": 1}, max_vms=4)
        assert policy._clamped_delta(fleet, "a", 5) == 1

    def test_drain_clamped_against_placeable_only(self):
        # One placeable VM plus one still in its lag window: effective
        # is 2, but draining the placeable one would leave the site
        # with zero live workers -- the clamp must refuse.
        policy = ThresholdPolicy(_threshold_spec())
        fleet = _fleet({"a": 1}, pending={"a": 1}, min_vms=1)
        assert policy._clamped_delta(fleet, "a", -1) == 0

    def test_drain_never_goes_below_min(self):
        policy = ThresholdPolicy(_threshold_spec())
        fleet = _fleet({"a": 3}, min_vms=2)
        assert policy._clamped_delta(fleet, "a", -5) == -1


class TestThresholdPolicy:
    def test_scales_up_above_band(self):
        policy = ThresholdPolicy(_threshold_spec(scale_step=2))
        actions = policy.decide(
            _snap(site_load={"a": 5}), _fleet({"a": 1, "b": 1})
        )
        assert actions == [ScaleAction("a", 2)]

    def test_holds_inside_hysteresis_band(self):
        policy = ThresholdPolicy(_threshold_spec())
        # ratio 1.0 sits between down (0.25) and up (2.0).
        actions = policy.decide(
            _snap(site_load={"a": 1, "b": 1}), _fleet({"a": 1, "b": 1})
        )
        assert actions == []

    def test_scales_down_when_quiet(self):
        policy = ThresholdPolicy(_threshold_spec())
        actions = policy.decide(
            _snap(site_load={}), _fleet({"a": 3, "b": 1})
        )
        # Only a has room above the floor; one VM shed per decision.
        assert actions == [ScaleAction("a", -1)]

    def test_admission_backlog_counts_as_demand(self):
        policy = ThresholdPolicy(_threshold_spec())
        fleet = _fleet({"a": 2, "b": 2})
        quiet = policy.decide(_snap(site_load={}), fleet)
        backlogged = policy.decide(
            _snap(site_load={}, admission_backlog=12), fleet
        )
        assert quiet == [ScaleAction("a", -1), ScaleAction("b", -1)]
        assert ScaleAction("a", 1) in backlogged
        assert ScaleAction("b", 1) in backlogged

    def test_pending_capacity_not_reordered_during_lag(self):
        policy = ThresholdPolicy(_threshold_spec())
        # 4 tasks over effective 4 (1 placeable + 3 in flight): ratio
        # 1.0, inside the band -- the lag window must not re-trigger.
        actions = policy.decide(
            _snap(site_load={"a": 4}), _fleet({"a": 1}, pending={"a": 3})
        )
        assert actions == []


class TestSLODebtPolicy:
    def _spec(self, **kw):
        return ElasticitySpec(
            enabled=True, policy="slo_debt", lag_s=10.0, **kw
        )

    def test_projected_debt_triggers_scale_up_at_pressured_site(self):
        policy = SLODebtPolicy(self._spec(debt_budget_s=5.0))
        fleet = _fleet({"a": 1, "b": 1})
        # First sample establishes the baseline; debt then grows at
        # 2 s/s, so the 10 s lag projection (4 + 20) blows the budget.
        policy.decide(_snap(now=0.0, slo_debt_s=0.0, site_load={"b": 3}), fleet)
        actions = policy.decide(
            _snap(now=2.0, slo_debt_s=4.0, site_load={"b": 3}), fleet
        )
        assert actions == [ScaleAction("b", 1)]

    def test_no_scale_down_while_debt_grows(self):
        policy = SLODebtPolicy(self._spec(debt_budget_s=1000.0))
        fleet = _fleet({"a": 2})
        policy.decide(_snap(now=0.0, slo_debt_s=0.0), fleet)
        actions = policy.decide(_snap(now=1.0, slo_debt_s=0.5), fleet)
        assert actions == []

    def test_scales_down_once_debt_flat_and_fleet_quiet(self):
        policy = SLODebtPolicy(self._spec())
        fleet = _fleet({"a": 2})
        policy.decide(_snap(now=0.0, slo_debt_s=1.0), fleet)
        actions = policy.decide(_snap(now=1.0, slo_debt_s=1.0), fleet)
        assert actions == [ScaleAction("a", -1)]

    def test_holds_capacity_while_backlog_waits_upstream(self):
        policy = SLODebtPolicy(self._spec())
        fleet = _fleet({"a": 2})
        policy.decide(_snap(now=0.0, slo_debt_s=1.0), fleet)
        actions = policy.decide(
            _snap(now=1.0, slo_debt_s=1.0, admission_backlog=3), fleet
        )
        assert actions == []


class TestPredictivePolicy:
    def _spec(self, **kw):
        kw.setdefault("ewma_alpha", 0.5)
        kw.setdefault("target_task_s", 10.0)
        kw.setdefault("lag_s", 5.0)
        return ElasticitySpec(enabled=True, policy="predictive", **kw)

    def _ramp(self, policy, fleet):
        out = []
        submitted = 0
        for i in range(1, 6):
            submitted += i  # accelerating arrivals
            out.append(
                policy.decide(
                    _snap(now=float(i), submitted_total=submitted,
                          site_load={"a": 1, "b": 1}),
                    fleet,
                )
            )
        return out

    def test_ramp_provisions_before_backlog_exists(self):
        policy = PredictivePolicy(self._spec(max_vms_per_site=4))
        rounds = self._ramp(policy, _fleet({"a": 1, "b": 1}, max_vms=4))
        ups = [a for acts in rounds for a in acts if a.delta > 0]
        assert ups, "accelerating arrivals must order capacity"

    def test_equal_histories_yield_equal_actions(self):
        fleet = _fleet({"a": 1, "b": 1}, max_vms=4)
        first = self._ramp(PredictivePolicy(self._spec(max_vms_per_site=4)), fleet)
        second = self._ramp(PredictivePolicy(self._spec(max_vms_per_site=4)), fleet)
        assert first == second

    def test_busy_site_is_not_mass_drained_on_forecast_dip(self):
        policy = PredictivePolicy(self._spec())
        # Zero forecast, but every VM at the site is busy: hold.
        actions = policy.decide(
            _snap(now=1.0, submitted_total=0, site_load={"a": 2}),
            _fleet({"a": 2}),
        )
        assert actions == []

    def test_idle_fleet_sheds_one_vm_per_tick(self):
        policy = PredictivePolicy(self._spec())
        policy.decide(
            _snap(now=1.0, submitted_total=0, site_load={}), _fleet({"a": 3})
        )
        actions = policy.decide(
            _snap(now=2.0, submitted_total=0, site_load={}), _fleet({"a": 3})
        )
        assert actions == [ScaleAction("a", -1)]
