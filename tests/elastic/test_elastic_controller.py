"""ElasticController integration: lag, drain/retire, signals, determinism."""

import pytest

from repro.cloud.deployment import Deployment
from repro.cloud.presets import azure_4dc_topology
from repro.elastic import ElasticController, ElasticSignals
from repro.obs.trace import Tracer
from repro.scenario import ElasticitySpec, get_scenario


class StubCluster:
    """The minimal ClusterView surface the controller samples."""

    def __init__(self, deployment):
        self._deployment = deployment
        self.vm_load = {}
        self.tenant_load = {}

    def site_load(self, site):
        return sum(
            self.vm_load.get(vm.name, 0)
            for vm in self._deployment.workers_at(site)
        )


@pytest.fixture
def small():
    dep = Deployment(
        topology=azure_4dc_topology(jitter=False), n_nodes=4, seed=1
    )
    return dep, StubCluster(dep)


def _controller(dep, cluster, spec, tracer=None, signals=None):
    ctl = ElasticController(
        dep, cluster, spec, signals=signals, tracer=tracer
    )
    ctl.start()
    return ctl


THRESHOLD = ElasticitySpec(
    enabled=True,
    policy="threshold",
    interval_s=1.0,
    lag_s=3.0,
    max_vms_per_site=4,
)


class TestProvisioningLag:
    def test_ordered_capacity_lands_lag_seconds_later(self, small):
        dep, cluster = small
        # Saturate east-us: its single worker carries 5 tasks.
        vm = dep.workers_at("east-us")[0]
        cluster.vm_load[vm.name] = 5
        ctl = _controller(dep, cluster, THRESHOLD)
        dep.env.run(until=1.5)  # first decision at t=1
        assert ctl.report.actions == [(1.0, "east-us", 1)]
        assert len(dep.workers_at("east-us")) == 1  # still in the lag
        dep.env.run(until=4.5)  # lands at t=1+3
        assert len(dep.workers_at("east-us")) == 2

    def test_pending_capacity_counts_toward_fleet_peak_only_on_arrival(
        self, small
    ):
        dep, cluster = small
        vm = dep.workers_at("east-us")[0]
        cluster.vm_load[vm.name] = 5
        ctl = _controller(dep, cluster, THRESHOLD)
        dep.env.run(until=1.5)
        assert ctl.report.fleet_peak == 4
        dep.env.run(until=4.5)
        assert ctl.report.fleet_peak == 5

    def test_warmup_parameters_applied_to_provisioned_vms(self, small):
        dep, cluster = small
        vm = dep.workers_at("east-us")[0]
        cluster.vm_load[vm.name] = 5
        spec = ElasticitySpec(
            enabled=True,
            policy="threshold",
            interval_s=1.0,
            lag_s=3.0,
            warmup_s=7.0,
            warmup_factor=3.0,
            max_vms_per_site=4,
        )
        _controller(dep, cluster, spec)
        dep.env.run(until=4.5)
        fresh = dep.workers_at("east-us")[-1]
        assert fresh.provisioned_at == 4.0
        assert fresh.warm_at == 4.0 + 7.0
        assert fresh.warmup_factor == 3.0


class TestDrainSemantics:
    def test_busy_vm_drains_without_stranding_then_retires(self, small):
        dep, cluster = small
        # A 5-VM east-us pool with one task on its newest VM reads
        # quiet (ratio 0.2 < 0.25), so the policy drains one -- and
        # drains shed newest-first, hitting the busy VM.  The other
        # sites sit mid-band so they stay untouched.
        extra = dep.add_vms("east-us", 4)[-1]
        for site in ("west-europe", "north-europe", "south-central-us"):
            for vm in dep.workers_at(site):
                cluster.vm_load[vm.name] = 1
        cluster.vm_load[extra.name] = 1  # the newest VM is busy
        ctl = _controller(dep, cluster, THRESHOLD)
        dep.env.run(until=1.5)
        # Drain ordered (newest first): out of placement immediately...
        assert (1.0, "east-us", -1) in ctl.report.actions
        assert extra not in dep.workers_at("east-us")
        assert extra.draining
        # ...but not retired while its placed tasks are running.
        assert extra in dep.draining
        cluster.vm_load[extra.name] = 0
        dep.env.run(until=2.5)  # next sweep retires it
        assert extra not in dep.draining
        report = ctl.finalize()
        assert report.stranded_tasks == 0

    def test_idle_vm_retires_in_the_same_tick(self, small):
        dep, cluster = small
        extra = dep.add_vms("east-us", 1)[0]
        for site in ("west-europe", "north-europe", "south-central-us"):
            for vm in dep.workers_at(site):
                cluster.vm_load[vm.name] = 1
        _controller(dep, cluster, THRESHOLD)
        dep.env.run(until=1.5)
        assert extra not in dep.draining  # already idle: retired at once

    def test_cooldown_rate_limits_actuation(self, small):
        dep, cluster = small
        vm = dep.workers_at("east-us")[0]
        cluster.vm_load[vm.name] = 50
        spec = ElasticitySpec(
            enabled=True,
            policy="threshold",
            interval_s=1.0,
            lag_s=10.0,
            cooldown_s=5.0,
            max_vms_per_site=4,
        )
        ctl = _controller(dep, cluster, spec)
        dep.env.run(until=4.5)
        # Without the cooldown the saturated site would re-trigger
        # every tick as each order enlarges the effective fleet.
        assert ctl.report.actions == [(1.0, "east-us", 1)]


class TestTracing:
    def test_scale_events_emitted_under_elastic_category(self, small):
        dep, cluster = small
        vm = dep.workers_at("east-us")[0]
        cluster.vm_load[vm.name] = 5
        tracer = Tracer(dep.env, categories=("elastic",))
        _controller(dep, cluster, THRESHOLD, tracer=tracer)
        dep.env.run(until=4.5)
        names = [name for _, cat, name, _ in tracer.events if cat == "elastic"]
        assert names.count("fleet") == 4  # baseline, one per site
        assert "scale_up" in names
        assert "vm_provisioned" in names
        by_name = {
            name: args for _, _, name, args in tracer.events
        }
        assert by_name["scale_up"]["lag_s"] == 3.0
        assert by_name["vm_provisioned"]["vms"] == 2


class TestSignals:
    def test_debt_accrues_from_overshoot_and_live_inflight(self):
        sig = ElasticSignals(tenant_deadlines={"t0": 10.0})
        sig.on_submit("run-a", "t0", now=0.0)
        sig.on_admit()
        sig.on_submit("run-b", "t0", now=0.0)
        assert sig.waiting_admission == 1
        # run-a completes 5 s late: closed debt.
        sig.on_complete("run-a", now=15.0)
        # run-b still in flight at t=20: 10 s live overshoot.
        assert sig.debt(20.0) == pytest.approx(5.0 + 10.0)

    def test_run_deadline_overshoot_counts(self):
        sig = ElasticSignals(run_deadline_s=30.0)
        assert sig.debt(29.0) == 0.0
        assert sig.debt(36.0) == pytest.approx(6.0)

    def test_tenants_without_deadlines_accrue_nothing(self):
        sig = ElasticSignals()
        sig.on_submit("run-a", "t0", now=0.0)
        sig.on_admit()
        sig.on_complete("run-a", now=100.0)
        assert sig.debt(200.0) == 0.0


class TestScenarioDeterminism:
    def test_same_spec_and_seed_replay_identical_actions(self):
        spec = get_scenario("autoscale_ramp")
        first = spec.run(quick=True)
        second = spec.run(quick=True)
        assert first.elastic is not None
        assert first.elastic.actions == second.elastic.actions
        assert first.elastic.to_dict() == second.elastic.to_dict()
        assert first.makespan == second.makespan

    def test_ramp_scenario_scales_up_and_back_down(self):
        res = get_scenario("autoscale_ramp").run(quick=True)
        report = res.elastic
        assert report.n_scale_ups >= 1
        assert report.n_scale_downs >= 1
        assert report.fleet_peak > report.fleet_initial
        assert report.stranded_tasks == 0
        assert report.vm_seconds > 0.0
        # Priced cost reflects the europe=1.5x multiplier.
        assert report.cost > 0.0

    def test_disabled_elasticity_attaches_no_report(self):
        res = get_scenario("multi_tenant_8").run(quick=True)
        assert res.elastic is None
