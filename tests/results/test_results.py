"""Results layer: serialization, spec-hash stores, and run diffing."""

import json

import pytest

from repro.results import (
    ResultStore,
    current_git_rev,
    diff_artifacts,
    diff_stores,
    result_metrics,
    scenario_result_to_dict,
    spec_hash,
    sweep_result_to_dict,
)
from repro.scenario import ScenarioSpec, get_scenario, run_sweep
from repro.workload import WorkloadSpec


def synthetic_result(**over):
    spec = get_scenario("paper_synthetic").replace(**over)
    return spec.run(quick=True)


class TestSerialization:
    def test_synthetic_artifact_round_trips_through_json(self):
        doc = scenario_result_to_dict(synthetic_result())
        loaded = json.loads(json.dumps(doc))
        assert loaded["kind"] == "scenario-result"
        assert loaded["surface"] == "synthetic"
        assert loaded["spec_hash"] == spec_hash(
            ScenarioSpec.from_dict(loaded["spec"])
        )
        assert loaded["metrics"]["makespan_s"] > 0
        assert loaded["metrics"]["throughput_ops_s"] > 0

    def test_workflow_artifact_round_trips_through_json(self):
        spec = ScenarioSpec(
            surface="workflow", application="montage", ops_per_task=4
        )
        doc = scenario_result_to_dict(spec.run())
        loaded = json.loads(json.dumps(doc))
        assert loaded["surface"] == "workflow"
        assert loaded["metrics"]["tasks"] > 0
        assert "transfer_time_s" in loaded["metrics"]

    def test_workload_artifact_round_trips_through_json(self):
        spec = ScenarioSpec(
            surface="workload",
            workload=WorkloadSpec.uniform(
                2, applications=("pipeline",), ops_per_task=4, name="t"
            ),
            n_nodes=4,
        )
        result = spec.run()
        doc = scenario_result_to_dict(result)
        loaded = json.loads(json.dumps(doc))
        assert loaded["surface"] == "workload"
        assert loaded["metrics"]["jain_fairness"] > 0
        assert loaded["metrics"]["completed"] == 2
        # The result object's own to_dict goes through the same path.
        assert result.to_dict() == doc

    def test_artifact_reproduces_run(self):
        # The embedded spec alone re-runs to the identical payload.
        doc = scenario_result_to_dict(synthetic_result())
        replay = ScenarioSpec.from_dict(doc["spec"]).run()
        assert scenario_result_to_dict(replay) == doc

    def test_sweep_document_includes_errored_cells(self):
        sweep = run_sweep(
            get_scenario("paper_synthetic"),
            {"strategy.name": ["centralized", "nope"]},
            quick=True,
        )
        doc = json.loads(json.dumps(sweep_result_to_dict(sweep)))
        assert doc["kind"] == "sweep-result"
        assert len(doc["cells"]) == 2
        assert doc["cells"][0]["error"] is None
        assert doc["cells"][1]["result"] is None
        assert "nope" in doc["cells"][1]["error"]
        assert sweep.to_dict() == sweep_result_to_dict(sweep)


class TestResultStore:
    def test_save_load_lookup_list(self, tmp_path):
        store = ResultStore(tmp_path / "runs")
        result = synthetic_result()
        path = store.save(
            result,
            overrides={"seed": 0},
            git_rev="abc1234",
            wall_time_s=1.5,
        )
        key = store.key_for(result.spec)
        assert path.name == f"{key}.json"
        assert key.endswith(f"-s{result.spec.seed}")
        # Key prefix is the first 12 hash hex chars.
        assert key.split("-")[0] == result.spec.spec_hash()[:12]

        doc = store.load(key)
        assert doc["meta"]["git_rev"] == "abc1234"
        assert doc["meta"]["wall_time_s"] == 1.5
        assert doc["meta"]["overrides"] == {"seed": 0}
        assert store.load(path) == doc

        assert store.lookup(result.spec)["spec_hash"] == result.spec.spec_hash()
        assert store.lookup(result.spec.replace(seed=99)) is None

        docs = store.list()
        assert len(docs) == len(store) == 1
        assert docs[0]["key"] == key

    def test_load_missing_raises(self, tmp_path):
        store = ResultStore(tmp_path)
        with pytest.raises(FileNotFoundError):
            store.load("ffffffffffff-s0")

    def test_empty_or_absent_store_lists_nothing(self, tmp_path):
        assert ResultStore(tmp_path / "nope").list() == []
        assert len(ResultStore(tmp_path / "nope")) == 0

    def test_current_git_rev_returns_short_hash(self):
        rev = current_git_rev()
        # Inside the repo checkout this is a short hex rev.
        assert rev != "unknown"
        int(rev, 16)


class TestDiffArtifacts:
    def test_spec_change_and_metric_delta_are_keyed(self):
        a = scenario_result_to_dict(synthetic_result())
        b = scenario_result_to_dict(synthetic_result(seed=3))
        diff = diff_artifacts(a, b, a_label="before", b_label="after")
        assert diff.spec_changes == {"seed": (0, 3)}
        assert set(diff.metric_deltas()) == set(a["metrics"])
        text = diff.render()
        assert "before" in text and "after" in text
        assert "seed" in text
        assert "makespan_s" in text

    def test_identical_artifacts_diff_empty(self):
        a = scenario_result_to_dict(synthetic_result())
        diff = diff_artifacts(a, a)
        assert diff.identical
        assert diff.spec_changes == {}
        assert "identical" in diff.render()


class TestDiffStores:
    def test_same_specs_pair_by_file_key(self, tmp_path):
        a, b = ResultStore(tmp_path / "a"), ResultStore(tmp_path / "b")
        r = synthetic_result()
        a.save(r, git_rev="one")
        b.save(r, git_rev="two")
        diff = diff_stores(a.root, b.root)
        assert len(diff.pairs) == 1
        assert diff.only_a == [] and diff.only_b == []
        assert diff.pairs[0].identical

    def test_changed_spec_pairs_by_name_seed_overrides(self, tmp_path):
        # n_nodes survives the quick() reduction, so the two specs
        # genuinely hash differently.
        a, b = ResultStore(tmp_path / "a"), ResultStore(tmp_path / "b")
        a.save(synthetic_result(), overrides={"x": 1})
        b.save(synthetic_result(n_nodes=16), overrides={"x": 1})
        diff = diff_stores(a.root, b.root)
        assert len(diff.pairs) == 1
        assert diff.only_a == [] and diff.only_b == []
        assert "n_nodes" in diff.pairs[0].spec_changes
        assert "n_nodes" in diff.render()

    def test_unmatched_artifacts_are_reported(self, tmp_path):
        a, b = ResultStore(tmp_path / "a"), ResultStore(tmp_path / "b")
        shared = synthetic_result()
        a.save(shared)
        a.save(synthetic_result(seed=5))
        b.save(shared)
        diff = diff_stores(a.root, b.root)
        assert len(diff.pairs) == 1
        assert len(diff.only_a) == 1
        assert diff.only_a[0].endswith("-s5")
        assert diff.only_b == []
        assert "only in A" in diff.render()


class TestElasticSerialization:
    def test_elastic_block_and_metrics_ride_on_artifacts(self):
        res = get_scenario("autoscale_ramp").run(quick=True)
        doc = scenario_result_to_dict(res)
        el = doc["elastic"]
        assert el["policy"] == "predictive"
        assert el["vm_seconds"] == pytest.approx(res.elastic.vm_seconds)
        assert el["stranded_tasks"] == 0
        assert [a["delta"] for a in el["actions"]] == [
            d for _, _, d in res.elastic.actions
        ]
        json.dumps(doc)  # artifact stays JSON-clean
        metrics = result_metrics(res)
        assert metrics["vm_seconds"] == pytest.approx(
            res.elastic.vm_seconds
        )
        assert metrics["capacity_cost"] == pytest.approx(res.elastic.cost)
        assert metrics["fleet_peak"] == float(res.elastic.fleet_peak)
        assert metrics["scale_ups"] == float(res.elastic.n_scale_ups)

    def test_disabled_runs_serialize_without_elastic_key(self):
        res = synthetic_result()
        doc = scenario_result_to_dict(res)
        assert "elastic" not in doc
        assert "vm_seconds" not in result_metrics(res)

    def test_elastic_artifacts_diff_on_capacity_metrics(self, tmp_path):
        store = ResultStore(tmp_path)
        a = get_scenario("autoscale_ramp").run(quick=True)
        b = get_scenario("autoscale_ramp").replace(
            **{"elasticity.max_vms_per_site": 1}
        ).run(quick=True)
        da = store.load(store.save(a))
        db = store.load(store.save(b))
        delta = diff_artifacts(da, db)
        assert "elasticity.max_vms_per_site" in delta.spec_changes
        assert "vm_seconds" in delta.metrics
        lo, hi = delta.metrics["vm_seconds"]
        assert lo != hi  # capping the fleet changes the capacity bill
