"""Deployment fleet lifecycle for the elastic control plane.

``add_vms`` / ``drain_vms`` / ``retire_vm`` are the actuation surface
of ``repro.elastic``: ordered capacity joins the placeable fleet (warm
or degraded), drains leave placement immediately but never strand
placed work, and the vm-seconds ledger bills each VM from provision to
decommission.
"""

import pytest

from repro.cloud.deployment import Deployment
from repro.cloud.presets import azure_4dc_topology


@pytest.fixture
def dep():
    return Deployment(
        topology=azure_4dc_topology(jitter=False), n_nodes=4, seed=1
    )


class TestAddVms:
    def test_added_vms_are_placeable_immediately(self, dep):
        before = len(dep.workers)
        added = dep.add_vms("east-us", 2)
        assert len(dep.workers) == before + 2
        assert all(vm in dep.workers_at("east-us") for vm in added)
        # Worker naming continues the static sequence.
        assert all(vm.name.startswith("worker-") for vm in added)

    def test_warmup_stretches_compute_until_warm_at(self, dep):
        env = dep.env
        env.run(until=10.0)
        vm = dep.add_vms("east-us", 1, warm_s=5.0, warmup_factor=2.0)[0]
        assert vm.provisioned_at == 10.0
        assert vm.warm_at == 15.0
        # Cold: a 1 s compute takes 2 s.
        env.run(until=env.process(vm.compute(1.0), name="cold"))
        assert env.now == pytest.approx(12.0)
        env.run(until=16.0)
        # Warm: back to nominal speed.
        env.run(until=env.process(vm.compute(1.0), name="warm"))
        assert env.now == pytest.approx(17.0)

    def test_static_fleet_is_born_warm(self, dep):
        vm = dep.workers[0]
        assert vm.warm_at == 0.0
        assert vm.warmup_factor == 1.0
        assert not vm.draining

    def test_provider_core_limit_still_enforced(self, dep):
        limit = dep.topology.get("east-us").core_limit
        with pytest.raises(ValueError, match="Core limit"):
            dep.add_vms("east-us", limit + 1)

    def test_nonpositive_count_rejected(self, dep):
        with pytest.raises(ValueError, match="positive"):
            dep.add_vms("east-us", 0)


class TestDrainVms:
    def test_drain_removes_from_placement_newest_first(self, dep):
        newest = dep.add_vms("east-us", 2)[-1]
        drained = dep.drain_vms("east-us", 1)
        assert drained == [newest]
        assert newest.draining
        assert newest not in dep.workers
        assert newest not in dep.workers_at("east-us")
        assert newest in dep.draining

    def test_drain_refuses_to_overdraw_a_site(self, dep):
        with pytest.raises(ValueError, match="only 1 there"):
            dep.drain_vms("east-us", 2)

    def test_drain_refuses_to_empty_the_fleet(self, dep):
        # 4 sites x 1 VM: draining all four would leave nothing
        # placeable anywhere.
        for site in ("west-europe", "north-europe", "south-central-us"):
            dep.drain_vms(site, 1)
        with pytest.raises(ValueError, match="entire fleet"):
            dep.drain_vms("east-us", 1)

    def test_draining_vms_hold_their_cores(self, dep):
        limit = dep.topology.get("east-us").core_limit
        dep.add_vms("east-us", limit - 1)  # site now at its cap
        dep.drain_vms("east-us", 1)
        with pytest.raises(ValueError, match="Core limit"):
            dep.add_vms("east-us", 1)

    def test_retire_requires_a_draining_vm(self, dep):
        with pytest.raises(ValueError, match="not draining"):
            dep.retire_vm(dep.workers[0])


class TestFleetListeners:
    def test_listener_sees_adds_and_drains(self, dep):
        events = []
        dep.add_fleet_listener(
            lambda added, removed: events.append(
                (len(added), len(removed))
            )
        )
        dep.add_vms("east-us", 2)
        dep.drain_vms("east-us", 1)
        assert events == [(2, 0), (0, 1)]


class TestVmSecondsLedger:
    def test_bills_provision_to_retire_and_survivors_to_now(self, dep):
        env = dep.env
        env.run(until=10.0)
        extra = dep.add_vms("east-us", 1)[0]
        env.run(until=30.0)
        dep.drain_vms("east-us", 1)
        dep.retire_vm(extra)  # lived 10 -> 30: 20 vm-seconds
        env.run(until=50.0)
        bill = dep.vm_seconds_by_site()
        # Static east-us VM bills the whole window, the retired one
        # only its provision-to-decommission lifetime.
        assert bill["east-us"] == pytest.approx(50.0 + 20.0)
        assert bill["west-europe"] == pytest.approx(50.0)
        assert dep.vm_seconds() == pytest.approx(sum(bill.values()))
