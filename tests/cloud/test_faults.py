"""Tests for the fault-injection framework."""

import pytest

from repro.cloud.deployment import Deployment
from repro.cloud.faults import (
    CacheFailureInjector,
    LatencySpikeInjector,
    SiteOutage,
)
from repro.cloud.presets import azure_4dc_topology
from repro.metadata.controller import ArchitectureController
from repro.metadata.entry import RegistryEntry


@pytest.fixture
def dep():
    return Deployment(
        topology=azure_4dc_topology(jitter=False), n_nodes=8, seed=41
    )


class TestCacheFailureInjector:
    def test_scheduled_failure_fires(self, dep, fast_config):
        ctrl = ArchitectureController(dep, strategy="hybrid", config=fast_config)
        strat = ctrl.strategy
        inj = CacheFailureInjector(
            dep.env, strat.registries, schedule=[(0.5, "west-europe")]
        )

        def flow():
            yield from strat.write("west-europe", RegistryEntry(key="pre"))
            yield dep.env.timeout(1.0)  # failure happens at t=0.5
            got = yield from strat.read(
                "west-europe", "pre", require_found=True
            )
            return got

        got = dep.env.run(until=dep.env.process(flow()))
        ctrl.shutdown()
        assert got is not None
        assert len(inj.events) == 1
        assert inj.events[0].kind == "cache-primary-failure"
        assert inj.events[0].at == pytest.approx(0.5)

    def test_unknown_site_rejected(self, dep, fast_config):
        ctrl = ArchitectureController(dep, strategy="hybrid", config=fast_config)
        with pytest.raises(ValueError):
            CacheFailureInjector(
                dep.env, ctrl.strategy.registries, schedule=[(1.0, "mars")]
            )
        ctrl.shutdown()


class TestLatencySpike:
    def test_spike_raises_then_restores(self, dep, fast_config):
        topo = dep.topology
        base = topo.latency("west-europe", "east-us")
        LatencySpikeInjector(
            dep.env, topo, "west-europe", "east-us",
            start=1.0, duration=2.0, factor=10.0,
        )

        def probe():
            yield dep.env.timeout(1.5)  # inside the spike window
            during = topo.latency("west-europe", "east-us")
            yield dep.env.timeout(2.0)  # after it ends
            after = topo.latency("west-europe", "east-us")
            return during, after

        during, after = dep.env.run(until=dep.env.process(probe()))
        assert during == pytest.approx(base * 10)
        assert after == pytest.approx(base)

    def test_validation(self, dep):
        with pytest.raises(ValueError):
            LatencySpikeInjector(
                dep.env, dep.topology, "west-europe", "east-us",
                start=0, duration=0,
            )


class TestSiteOutage:
    def test_requests_stall_and_drain(self, dep, fast_config):
        ctrl = ArchitectureController(
            dep, strategy="centralized", config=fast_config
        )
        strat = ctrl.strategy
        SiteOutage(dep.env, strat.registry, start=0.1, duration=3.0)

        def flow():
            yield dep.env.timeout(0.5)  # outage in effect
            t0 = dep.env.now
            got = yield from strat.read(
                strat.home_site, "anything"
            )
            return dep.env.now - t0, got

        stall, got = dep.env.run(until=dep.env.process(flow()))
        ctrl.shutdown()
        # The read only completed after the outage lifted (~t=3.1).
        assert stall >= 2.0
        assert got is None  # nothing was ever written

    def test_validation(self, dep, fast_config):
        ctrl = ArchitectureController(
            dep, strategy="centralized", config=fast_config
        )
        with pytest.raises(ValueError):
            SiteOutage(dep.env, ctrl.strategy.registry, start=0, duration=0)
        ctrl.shutdown()
