"""Tests for the fault-injection framework."""

import pytest

from repro.cloud.deployment import Deployment
from repro.cloud.faults import (
    CacheFailureInjector,
    LatencySpikeInjector,
    LinkFlapInjector,
    RegionOutage,
    SiteOutage,
)
from repro.cloud.presets import azure_4dc_topology
from repro.metadata.controller import ArchitectureController
from repro.metadata.entry import RegistryEntry
from repro.storage.filestore import StoredFile
from repro.storage.transfer import TransferService
from repro.util.units import MB


@pytest.fixture
def dep():
    return Deployment(
        topology=azure_4dc_topology(jitter=False), n_nodes=8, seed=41
    )


@pytest.fixture
def fair_dep():
    return Deployment(
        topology=azure_4dc_topology(jitter=False),
        n_nodes=4,
        seed=41,
        bandwidth_model="fair",
    )


class TestCacheFailureInjector:
    def test_scheduled_failure_fires(self, dep, fast_config):
        ctrl = ArchitectureController(dep, strategy="hybrid", config=fast_config)
        strat = ctrl.strategy
        inj = CacheFailureInjector(
            dep.env, strat.registries, schedule=[(0.5, "west-europe")]
        )

        def flow():
            yield from strat.write("west-europe", RegistryEntry(key="pre"))
            yield dep.env.timeout(1.0)  # failure happens at t=0.5
            got = yield from strat.read(
                "west-europe", "pre", require_found=True
            )
            return got

        got = dep.env.run(until=dep.env.process(flow()))
        ctrl.shutdown()
        assert got is not None
        assert len(inj.events) == 1
        assert inj.events[0].kind == "cache-primary-failure"
        assert inj.events[0].at == pytest.approx(0.5)

    def test_unknown_site_rejected(self, dep, fast_config):
        ctrl = ArchitectureController(dep, strategy="hybrid", config=fast_config)
        with pytest.raises(ValueError):
            CacheFailureInjector(
                dep.env, ctrl.strategy.registries, schedule=[(1.0, "mars")]
            )
        ctrl.shutdown()


class TestLatencySpike:
    def test_spike_raises_then_restores(self, dep, fast_config):
        topo = dep.topology
        base = topo.latency("west-europe", "east-us")
        LatencySpikeInjector(
            dep.env, topo, "west-europe", "east-us",
            start=1.0, duration=2.0, factor=10.0,
        )

        def probe():
            yield dep.env.timeout(1.5)  # inside the spike window
            during = topo.latency("west-europe", "east-us")
            yield dep.env.timeout(2.0)  # after it ends
            after = topo.latency("west-europe", "east-us")
            return during, after

        during, after = dep.env.run(until=dep.env.process(probe()))
        assert during == pytest.approx(base * 10)
        assert after == pytest.approx(base)

    def test_validation(self, dep):
        with pytest.raises(ValueError):
            LatencySpikeInjector(
                dep.env, dep.topology, "west-europe", "east-us",
                start=0, duration=0,
            )


class TestSiteOutage:
    def test_requests_stall_and_drain(self, dep, fast_config):
        ctrl = ArchitectureController(
            dep, strategy="centralized", config=fast_config
        )
        strat = ctrl.strategy
        SiteOutage(dep.env, strat.registry, start=0.1, duration=3.0)

        def flow():
            yield dep.env.timeout(0.5)  # outage in effect
            t0 = dep.env.now
            got = yield from strat.read(
                strat.home_site, "anything"
            )
            return dep.env.now - t0, got

        stall, got = dep.env.run(until=dep.env.process(flow()))
        ctrl.shutdown()
        # The read only completed after the outage lifted (~t=3.1).
        assert stall >= 2.0
        assert got is None  # nothing was ever written

    def test_validation(self, dep, fast_config):
        ctrl = ArchitectureController(
            dep, strategy="centralized", config=fast_config
        )
        with pytest.raises(ValueError):
            SiteOutage(dep.env, ctrl.strategy.registry, start=0, duration=0)
        ctrl.shutdown()

    def test_needs_registry_or_site(self, dep):
        with pytest.raises(ValueError, match="registry or an explicit site"):
            SiteOutage(dep.env, start=0.1, duration=1.0)


class TestSiteOutageFlowTeardown:
    """Data-plane outage semantics under the fair bandwidth model."""

    def test_aborts_in_flight_flows_and_storage_retries(self, fair_dep):
        dep = fair_dep
        svc = TransferService(dep.env, dep.network, dep.sites)
        svc.store("west-europe", StoredFile("big", 50 * MB))
        svc.store("north-europe", StoredFile("big", 50 * MB))
        outage = SiteOutage(
            dep.env,
            start=0.3,
            duration=5.0,
            network=dep.network,
            site="west-europe",
        )

        def pull():
            yield from svc.fetch("big", "east-us")

        dep.env.run(until=dep.env.process(pull()))
        # The closest source (west-europe) died mid-transfer; the fetch
        # re-sourced from north-europe instead of waiting out the outage.
        assert outage.aborted_flows == 1
        assert svc.retries == 1
        assert dep.network.stats.aborted_transfers == 1
        # 0.3 s at 50 MB/s delivered before the cut; the rest aborted.
        assert dep.network.stats.aborted_bytes == pytest.approx(
            50 * MB - 0.3 * 50 * MB
        )
        assert dep.network.stats.retried_transfers == 1
        assert dep.network.stats.retried_bytes == 50 * MB
        assert svc.stores["east-us"].has("big")
        assert dep.env.now < 5.0  # finished well before the outage lifted

    def test_destination_outage_does_not_blacklist_source(self, fair_dep):
        """A destination-site outage says nothing about the source: after
        recovery the fetch retries from the same (nearest) holder rather
        than being forced onto a worse alternative."""
        dep = fair_dep
        svc = TransferService(dep.env, dep.network, dep.sites)
        # Nearest holder for east-us is west-europe (40 ms) vs
        # north-europe (42 ms).
        svc.store("west-europe", StoredFile("big", 50 * MB))
        svc.store("north-europe", StoredFile("big", 50 * MB))
        SiteOutage(
            dep.env,
            start=0.3,
            duration=2.0,
            network=dep.network,
            site="east-us",
        )

        def pull():
            yield from svc.fetch("big", "east-us")

        dep.env.run(until=dep.env.process(pull()))
        assert svc.retries == 1
        # Read accounting happens at the *successful* source only: the
        # healthy nearest holder served the retry, the alternative was
        # never touched.
        assert svc.stores["west-europe"].bytes_read == 50 * MB
        assert svc.stores["north-europe"].bytes_read == 0

    def test_sole_source_waits_out_the_outage(self, fair_dep):
        dep = fair_dep
        svc = TransferService(dep.env, dep.network, dep.sites)
        svc.store("west-europe", StoredFile("big", 50 * MB))
        SiteOutage(
            dep.env,
            start=0.3,
            duration=5.0,
            network=dep.network,
            site="west-europe",
        )

        def pull():
            yield from svc.fetch("big", "east-us")

        dep.env.run(until=dep.env.process(pull()))
        # Only one holder: the retry had to wait for recovery (t=5.3),
        # then retransmit the whole file (1 s at 50 MB/s) plus the
        # 40 ms one-way propagation.
        assert svc.retries == 1
        assert dep.env.now == pytest.approx(5.3 + 1.0 + 0.040, abs=0.01)

    def test_slots_model_ignores_data_plane(self, dep):
        # Under the slot model the outage surface is the registry only.
        assert dep.network.abort_site_flows("west-europe", 1.0) == 0
        assert dep.network.flap_link("west-europe", "east-us") == 0

    def test_unknown_site_rejected(self, fair_dep):
        with pytest.raises(KeyError):
            fair_dep.network.abort_site_flows("mars", 1.0)


class TestLinkFlapInjector:
    def test_flap_kills_flows_and_transfer_retries(self, fair_dep):
        dep = fair_dep
        svc = TransferService(dep.env, dep.network, dep.sites)
        svc.store("west-europe", StoredFile("big", 50 * MB))
        flap = LinkFlapInjector(
            dep.env,
            dep.network,
            "west-europe",
            "east-us",
            times=[0.5],
        )

        def pull():
            yield from svc.fetch("big", "east-us")

        dep.env.run(until=dep.env.process(pull()))
        assert flap.aborted_flows == 1
        assert [e.kind for e in flap.events] == ["link-flap"]
        assert svc.retries == 1
        # No down window: the retry restarts immediately after the flap
        # (full retransmit at 50 MB/s plus one-way propagation).
        assert dep.env.now == pytest.approx(0.5 + 1.0 + 0.040, abs=0.01)

    def test_rpc_in_flight_retransmits_through_flap(self, fair_dep):
        """An RPC cannot re-source around a fault, so its legs retry
        transparently instead of surfacing FlowAborted to the caller."""
        dep = fair_dep
        net = dep.network
        LinkFlapInjector(
            dep.env, net, "west-europe", "east-us", times=[0.5]
        )

        def call():
            # A bulky request leg: ~1 s in flight, so the flap at 0.5 s
            # lands mid-transmission.
            return (
                yield from net.rpc(
                    "west-europe",
                    "east-us",
                    lambda: 42,
                    request_size=50 * MB,
                    response_size=256,
                )
            )

        result = dep.env.run(until=dep.env.process(call()))
        assert result == 42
        assert net.stats.aborted_transfers == 1
        assert net.stats.retried_transfers == 1
        # Retransmit from scratch: flap at 0.5 + full 1 s resend.
        assert dep.env.now > 1.5

    def test_rpc_waits_out_site_outage(self, fair_dep):
        """RPC legs to a down site queue until recovery, then deliver."""
        dep = fair_dep
        net = dep.network
        SiteOutage(
            dep.env,
            start=0.2,
            duration=2.0,
            network=net,
            site="east-us",
        )

        def call():
            return (
                yield from net.rpc(
                    "west-europe",
                    "east-us",
                    lambda: "ok",
                    request_size=50 * MB,
                    response_size=256,
                )
            )

        result = dep.env.run(until=dep.env.process(call()))
        assert result == "ok"
        # Aborted at 0.2, waited for recovery at 2.2, retransmitted.
        assert dep.env.now > 2.2 + 1.0
        assert net.stats.aborted_transfers == 1

    def test_flap_leaves_other_links_alone(self, fair_dep):
        dep = fair_dep
        net = dep.network

        def xfer(src, dst):
            yield from net.transfer(src, dst, size=10 * MB)

        proc = dep.env.process(xfer("north-europe", "east-us"))
        LinkFlapInjector(
            dep.env, net, "west-europe", "east-us", times=[0.05]
        )
        dep.env.run(until=proc)  # completes unharmed
        assert net.stats.aborted_transfers == 0

    def test_validation(self, fair_dep):
        with pytest.raises(ValueError):
            LinkFlapInjector(
                fair_dep.env,
                fair_dep.network,
                "west-europe",
                "east-us",
                times=[],
            )
        with pytest.raises(KeyError):
            LinkFlapInjector(
                fair_dep.env,
                fair_dep.network,
                "west-europe",
                "atlantis",
                times=[1.0],
            )


class TestRegionOutage:
    """Correlated outage: several sites die together, atomically."""

    def test_region_tag_resolution(self, fair_dep):
        sites = fair_dep.topology.sites_in_region("europe")
        assert sorted(sites) == ["north-europe", "west-europe"]
        with pytest.raises(KeyError, match="Unknown region"):
            fair_dep.topology.sites_in_region("oceania")

    def test_validation(self, fair_dep):
        with pytest.raises(ValueError, match="duration"):
            RegionOutage(fair_dep.env, sites=["east-us"], duration=0.0)
        with pytest.raises(ValueError, match="exactly one"):
            RegionOutage(
                fair_dep.env,
                sites=["east-us"],
                region="europe",
                topology=fair_dep.topology,
                duration=1.0,
            )
        with pytest.raises(ValueError, match="exactly one"):
            RegionOutage(fair_dep.env, duration=1.0)
        with pytest.raises(ValueError, match="topology"):
            RegionOutage(fair_dep.env, region="europe", duration=1.0)

    def test_batched_teardown_single_resolve(self, fair_dep):
        """Both sites' flows die in ONE rebalance pass, not one each."""
        from repro.sim import AllOf
        from repro.cloud.flow import FlowAborted

        dep = fair_dep
        net = dep.network
        failures = []

        def watch(src, dst):
            try:
                yield from net.transfer(src, dst, 500 * MB)
            except FlowAborted:
                failures.append((src, dst))

        # Open one long transfer out of each European site.
        procs = [
            dep.env.process(watch("west-europe", "east-us")),
            dep.env.process(watch("north-europe", "south-central-us")),
        ]
        dep.env.run(until=dep.env.timeout(0.2))
        before = net.flow_net.rebalances
        aborted = net.abort_region_flows(
            ["west-europe", "north-europe"], duration=1.0
        )
        assert aborted == 2
        # One global re-solve for the whole region, the atomicity the
        # per-site loop cannot give.
        assert net.flow_net.rebalances == before + 1
        assert net.flow_net.down_remaining("west-europe") == pytest.approx(1.0)
        assert net.flow_net.down_remaining("north-europe") == pytest.approx(1.0)
        dep.env.run(until=AllOf(dep.env, procs))
        assert sorted(failures) == [
            ("north-europe", "south-central-us"),
            ("west-europe", "east-us"),
        ]

    def test_fair_model_integration_retry_after_window(self, fair_dep):
        """A region-wide EU outage kills the transfer; with no replica
        outside the region the fetch waits out the shared window."""
        dep = fair_dep
        svc = TransferService(dep.env, dep.network, dep.sites)
        svc.store("west-europe", StoredFile("big", 50 * MB))
        svc.store("north-europe", StoredFile("big", 50 * MB))
        ctrl = ArchitectureController(dep, strategy="decentralized")
        outage = RegionOutage(
            dep.env,
            region="europe",
            topology=dep.topology,
            registries=ctrl.strategy.registries,
            network=dep.network,
            start=0.3,
            duration=4.0,
        )

        def pull():
            yield from svc.fetch("big", "east-us")

        dep.env.run(until=dep.env.process(pull()))
        ctrl.shutdown()
        # The in-flight flow died; both candidate sources sat in the
        # same down window, so recovery gated completion.
        assert outage.aborted_flows == 1
        assert svc.retries >= 1
        assert dep.env.now > 4.3
        assert svc.stores["east-us"].has("big")
        kinds = [e.kind for e in outage.events]
        assert kinds == ["region-outage-start", "region-outage-end"]
        assert outage.events[1].at - outage.events[0].at == pytest.approx(4.0)

    def test_control_plane_requests_stall_and_drain(self, dep, fast_config):
        """Member registries queue new requests until the window lifts."""
        ctrl = ArchitectureController(
            dep, strategy="decentralized", config=fast_config
        )
        strat = ctrl.strategy
        RegionOutage(
            dep.env,
            region="europe",
            topology=dep.topology,
            registries=strat.registries,
            start=0.2,
            duration=3.0,
        )

        # A key homed inside the dark region (the DHT assigns homes by
        # hash, so probe for one).
        key = next(
            k
            for k in (f"key-{i}" for i in range(200))
            if strat.home_of(k) in ("west-europe", "north-europe")
        )

        def flow():
            yield dep.env.timeout(1.0)  # mid-outage
            got = yield from strat.write("west-europe", RegistryEntry(key=key))
            return got

        got = dep.env.run(until=dep.env.process(flow()))
        ctrl.shutdown()
        assert got is not None
        # The write could only complete after the shared window lifted.
        assert dep.env.now > 3.2
