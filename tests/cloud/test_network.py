"""Tests for the latency/bandwidth network model and RPC helper."""

import pytest

from repro.cloud.network import Network
from repro.cloud.presets import azure_4dc_topology
from repro.sim import Environment
from repro.util.units import MB


@pytest.fixture
def net(env):
    return Network(env, azure_4dc_topology(jitter=False))


def run(env, gen):
    return env.run(until=env.process(gen))


class TestDelayModel:
    def test_one_way_delay_includes_latency(self, net):
        d = net.one_way_delay("west-europe", "east-us")
        assert d >= 0.040  # base one-way latency

    def test_size_adds_bandwidth_term(self, net):
        small = net.one_way_delay("west-europe", "east-us", size=0)
        big = net.one_way_delay("west-europe", "east-us", size=50 * MB)
        assert big >= small + 0.9  # 50 MB over 50 MB/s ~ 1 s

    def test_local_faster_than_remote(self, net):
        assert net.one_way_delay("west-europe", "west-europe") < net.one_way_delay(
            "west-europe", "north-europe"
        )

    def test_jitter_never_negative(self, env):
        net = Network(env, azure_4dc_topology(jitter=True))
        base = azure_4dc_topology(jitter=False).latency("west-europe", "east-us")
        for _ in range(200):
            assert net.one_way_delay("west-europe", "east-us") >= base


class TestTransfer:
    def test_transfer_takes_delay(self, env, net):
        msg = run(env, net.transfer("west-europe", "east-us", size=1024))
        assert env.now > 0.040
        assert msg.src == "west-europe"
        assert msg.dst == "east-us"

    def test_stats_accounting(self, env, net):
        run(env, net.transfer("west-europe", "east-us", size=100))
        run(env, net.transfer("west-europe", "west-europe", size=50))
        run(env, net.transfer("west-europe", "north-europe", size=25))
        assert net.stats.messages == 3
        assert net.stats.bytes == 175
        assert net.stats.geo_distant_messages == 1
        assert net.stats.local_messages == 1
        assert net.stats.same_region_messages == 1

    def test_link_concurrency_limits_inflight(self, env, topo):
        net = Network(env, topo, link_concurrency=2)
        done = []

        def xfer():
            yield from net.transfer("west-europe", "east-us", size=0)
            done.append(env.now)

        for _ in range(4):
            env.process(xfer())
        env.run()
        # 4 transfers through 2 slots -> two waves.
        assert len(done) == 4
        assert max(done) > min(done)

    def test_reset_stats(self, env, net):
        run(env, net.transfer("west-europe", "east-us", size=10))
        net.reset_stats()
        assert net.stats.messages == 0


class TestRpc:
    def test_round_trip_with_service_generator(self, env, net):
        def service():
            yield env.timeout(0.005)
            return "served"

        result = run(
            env, net.rpc("west-europe", "east-us", service())
        )
        assert result == "served"
        # Two WAN legs plus 5 ms service.
        assert env.now >= 2 * 0.040 + 0.005

    def test_rpc_with_callable(self, env, net):
        result = run(env, net.rpc("west-europe", "west-europe", lambda: 41))
        assert result == 41

    def test_local_rpc_still_pays_lan(self, env, net):
        run(env, net.rpc("west-europe", "west-europe", lambda: None))
        assert env.now > 0  # distinct VMs within a site

    def test_service_exception_propagates(self, env, net):
        def bad_service():
            yield env.timeout(0.001)
            raise RuntimeError("server error")

        with pytest.raises(RuntimeError, match="server error"):
            run(env, net.rpc("west-europe", "east-us", bad_service()))
