"""Flow-level max-min fair-share bandwidth model tests.

Covers the FairShareLink scheduler itself, the Network integration
behind ``bandwidth_model="fair"``, and the accounting/estimator bugfix
regressions for the slot model (jitter-free round_trip, end-to-end
latency under a saturated link).
"""

import math

import pytest

from repro.cloud.flow import FairShareLink, FlowAborted, FlowNetwork
from repro.cloud.network import Network
from repro.cloud.presets import azure_4dc_topology, make_topology
from repro.sim import Environment
from repro.util.units import MB

WAN_BW = 50 * MB  # azure preset WAN bandwidth, bytes/s
LAT = 0.040  # west-europe -> east-us one-way base latency, s
OVH = Network.PER_MESSAGE_OVERHEAD


def run(env, gen):
    return env.run(until=env.process(gen))


@pytest.fixture
def fair_net(env, topo):
    return Network(env, topo, bandwidth_model="fair")


class TestFairShareLink:
    def test_single_flow_gets_full_capacity(self, env):
        link = FairShareLink(env, capacity=100.0)
        flow = link.open(size=200)
        env.run(until=flow.done)
        assert env.now == pytest.approx(2.0)
        assert flow.rate == pytest.approx(100.0)

    def test_equal_flows_split_capacity_evenly(self, env):
        """N concurrent same-size flows each observe ~1/N of the link."""
        n = 4
        link = FairShareLink(env, capacity=100.0)
        flows = [link.open(size=100) for _ in range(n)]
        for f in flows:
            assert f.rate == pytest.approx(100.0 / n)
        env.run(until=env.all_of([f.done for f in flows]))
        # 100 bytes each at 25 B/s: all finish together at t=4.
        assert env.now == pytest.approx(4.0)

    def test_finishing_flow_releases_share(self, env):
        link = FairShareLink(env, capacity=100.0)
        short = link.open(size=100)
        long = link.open(size=200)
        env.run(until=short.done)
        assert env.now == pytest.approx(2.0)  # both at 50 B/s
        assert long.rate == pytest.approx(100.0)  # inherits the link
        env.run(until=long.done)
        # 100 bytes left at 100 B/s after t=2.
        assert env.now == pytest.approx(3.0)

    def test_late_joiner_slows_existing_flow(self, env):
        link = FairShareLink(env, capacity=100.0)
        results = {}

        def first():
            flow = link.open(size=100)
            yield flow.done
            results["first"] = env.now

        def second():
            yield env.timeout(0.5)
            flow = link.open(size=100)
            yield flow.done
            results["second"] = env.now

        env.process(first())
        env.process(second())
        env.run()
        # First: 50 bytes alone (0.5 s), then 50 bytes at half rate (1 s).
        assert results["first"] == pytest.approx(1.5)
        # Second: 50 bytes at half rate (1 s), then 50 at full (0.5 s).
        assert results["second"] == pytest.approx(2.0)

    def test_max_rate_cap_redistributes_surplus(self, env):
        """Max-min: a capped flow keeps its cap, others split the rest."""
        link = FairShareLink(env, capacity=90.0)
        capped = link.open(size=90, max_rate=10.0)
        free_a = link.open(size=400)
        free_b = link.open(size=400)
        assert capped.rate == pytest.approx(10.0)
        assert free_a.rate == pytest.approx(40.0)
        assert free_b.rate == pytest.approx(40.0)
        env.run(until=capped.done)
        assert env.now == pytest.approx(9.0)

    def test_zero_size_flow_completes_immediately(self, env):
        link = FairShareLink(env, capacity=10.0)
        flow = link.open(size=0)
        env.run(until=flow.done)
        assert env.now == 0.0
        assert link.n_active == 0

    def test_fair_rate_estimator_counts_prospective_flow(self, env):
        link = FairShareLink(env, capacity=100.0)
        assert link.fair_rate() == pytest.approx(100.0)
        link.open(size=1000)
        assert link.fair_rate() == pytest.approx(50.0)

    def test_fair_rate_estimator_respects_existing_caps(self, env):
        """A capped active flow leaves its surplus to the newcomer."""
        link = FairShareLink(env, capacity=100.0)
        link.open(size=1000, max_rate=10.0)
        assert link.fair_rate() == pytest.approx(90.0)
        # And the estimate matches what a real flow then receives.
        newcomer = link.open(size=1000)
        assert newcomer.rate == pytest.approx(90.0)

    def test_stats_track_concurrency(self, env):
        link = FairShareLink(env, capacity=100.0)
        flows = [link.open(size=50) for _ in range(3)]
        env.run(until=env.all_of([f.done for f in flows]))
        assert link.stats.flows == 3
        assert link.stats.bytes == 150
        assert link.stats.max_concurrent == 3

    def test_abort_frees_bandwidth(self, env):
        link = FairShareLink(env, capacity=100.0)
        doomed = link.open(size=1000)
        survivor = link.open(size=100)
        failures = []

        def waiter():
            try:
                yield doomed.done
            except Exception as exc:  # noqa: BLE001 - abort surfaces here
                failures.append(exc)

        env.process(waiter())

        def aborter():
            yield env.timeout(0.5)
            link.abort(doomed)

        env.process(aborter())
        env.run(until=survivor.done)
        # 25 bytes at 50 B/s, then 75 bytes at full capacity.
        assert env.now == pytest.approx(0.5 + 0.75)
        assert len(failures) == 1
        assert isinstance(failures[0], FlowAborted)

    def test_abort_accounts_partial_bytes(self, env):
        """Regression: abort used to leave the byte counters untouched.

        The doomed flow transmitted 25 bytes before the abort: those
        count as delivered, the unsent 975 as aborted, and the closed
        link conserves bytes exactly.
        """
        link = FairShareLink(env, capacity=100.0)
        doomed = link.open(size=1000)
        survivor = link.open(size=100)

        def waiter():
            try:
                yield doomed.done
            except FlowAborted:
                pass

        env.process(waiter())

        def aborter():
            yield env.timeout(0.5)  # both flows at 50 B/s so far
            link.abort(doomed)

        env.process(aborter())
        env.run(until=survivor.done)
        s = link.stats
        assert s.aborted_flows == 1
        assert s.aborted_bytes == pytest.approx(975.0)
        # Delivered: 25 partial bytes of the doomed flow + the survivor.
        assert s.delivered_bytes == pytest.approx(25.0 + 100.0)
        assert s.delivered_bytes + s.aborted_bytes == pytest.approx(s.bytes)

    def test_weighted_flows_split_proportionally(self, env):
        link = FairShareLink(env, capacity=90.0)
        light = link.open(size=900, weight=1.0)
        heavy = link.open(size=900, weight=2.0)
        assert light.rate == pytest.approx(30.0)
        assert heavy.rate == pytest.approx(60.0)
        env.run(until=heavy.done)
        # Heavy finishes first (same size, twice the rate).
        assert env.now == pytest.approx(15.0)

    def test_invalid_weight_rejected(self, env):
        link = FairShareLink(env, capacity=10.0)
        with pytest.raises(ValueError, match="weight"):
            link.open(size=10, weight=0.0)


class TestFlowNetworkHierarchy:
    """Site egress/ingress caps couple links through a FlowNetwork."""

    @staticmethod
    def _net(env, egress=None, ingress=None):
        egress = egress or {}
        ingress = ingress or {}
        return FlowNetwork(
            env,
            site_caps=lambda s: (
                egress.get(s, math.inf),
                ingress.get(s, math.inf),
            ),
        )

    def test_egress_cap_shared_by_two_links(self, env):
        fn = self._net(env, egress={"a": 60.0})
        f1 = fn.link("a", "b", capacity=100.0).open(600)
        f2 = fn.link("a", "c", capacity=100.0).open(600)
        assert f1.rate == pytest.approx(30.0)
        assert f2.rate == pytest.approx(30.0)
        env.run(until=f1.done)
        assert env.now == pytest.approx(20.0)

    def test_finishing_flow_returns_egress_headroom(self, env):
        fn = self._net(env, egress={"a": 60.0})
        short = fn.link("a", "b", capacity=100.0).open(300)
        long = fn.link("a", "c", capacity=100.0).open(600)
        env.run(until=short.done)
        assert env.now == pytest.approx(10.0)
        # The survivor inherits the full egress cap (link allows it).
        assert long.rate == pytest.approx(60.0)
        env.run(until=long.done)
        assert env.now == pytest.approx(10.0 + 300 / 60.0)

    def test_link_tighter_than_site_cap_wins(self, env):
        fn = self._net(env, egress={"a": 1000.0})
        flow = fn.link("a", "b", capacity=50.0).open(100)
        assert flow.rate == pytest.approx(50.0)

    def test_ingress_cap_shared_by_two_senders(self, env):
        fn = self._net(env, ingress={"c": 80.0})
        f1 = fn.link("a", "c", capacity=100.0).open(800)
        f2 = fn.link("b", "c", capacity=100.0).open(800)
        assert f1.rate == pytest.approx(40.0)
        assert f2.rate == pytest.approx(40.0)

    def test_weights_apply_at_site_bottleneck(self, env):
        fn = self._net(env, egress={"a": 90.0})
        light = fn.link("a", "b", capacity=100.0).open(900, weight=1.0)
        heavy = fn.link("a", "c", capacity=100.0).open(900, weight=2.0)
        assert light.rate == pytest.approx(30.0)
        assert heavy.rate == pytest.approx(60.0)

    def test_site_outage_aborts_and_marks_down(self, env):
        fn = self._net(env)
        la_b = fn.link("a", "b", capacity=100.0)
        lc_b = fn.link("c", "b", capacity=100.0)
        doomed_out = la_b.open(1000)
        survivor = lc_b.open(1000)
        for f in (doomed_out, survivor):
            f.done.defused = True  # nobody waits in this unit test
        n = fn.site_outage("a", duration=5.0)
        assert n == 1
        assert doomed_out not in la_b.flows
        assert survivor in lc_b.flows
        assert fn.down_remaining("a") == pytest.approx(5.0)
        assert fn.down_remaining("c") == 0.0

    def test_flap_aborts_both_directions(self, env):
        fn = self._net(env)
        fwd = fn.link("a", "b", capacity=100.0).open(1000)
        bwd = fn.link("b", "a", capacity=100.0).open(1000)
        other = fn.link("a", "c", capacity=100.0).open(1000)
        for f in (fwd, bwd, other):
            f.done.defused = True
        assert fn.flap_link("a", "b") == 2
        assert other.rate == pytest.approx(100.0)
        assert fn.down_remaining("a") == 0.0  # flaps have no down window


class TestNetworkFairModel:
    def test_rejects_unknown_model(self, env, topo):
        with pytest.raises(ValueError, match="bandwidth_model"):
            Network(env, topo, bandwidth_model="token-bucket")

    def test_single_transfer_matches_slots_timing(self, env, topo):
        """Uncontended, fair and slots charge the same delay."""
        net = Network(env, topo, bandwidth_model="fair")
        run(env, net.transfer("west-europe", "east-us", size=10 * MB))
        assert env.now == pytest.approx(LAT + OVH + 10 * MB / WAN_BW)

    def test_concurrent_transfers_each_get_1_over_n(self, env, topo):
        """Acceptance: N same-link transfers each see ~1/N bandwidth."""
        net = Network(env, topo, bandwidth_model="fair")
        n, size = 4, 10 * MB
        done = []

        def xfer():
            yield from net.transfer("west-europe", "east-us", size=size)
            done.append(env.now)

        for _ in range(n):
            env.process(xfer())
        env.run()
        expected = n * size / WAN_BW + LAT + OVH
        assert done == pytest.approx([expected] * n)

    def test_opposite_directions_do_not_contend(self, env, topo):
        net = Network(env, topo, bandwidth_model="fair")
        done = {}

        def xfer(src, dst, tag):
            yield from net.transfer(src, dst, size=10 * MB)
            done[tag] = env.now

        env.process(xfer("west-europe", "east-us", "fwd"))
        env.process(xfer("east-us", "west-europe", "bwd"))
        env.run()
        assert done["fwd"] == pytest.approx(done["bwd"])
        assert done["fwd"] == pytest.approx(LAT + OVH + 10 * MB / WAN_BW)

    def test_local_transfers_bypass_flow_sharing(self, env, topo):
        net = Network(env, topo, bandwidth_model="fair")
        done = []

        def xfer():
            yield from net.transfer("west-europe", "west-europe", size=10 * MB)
            done.append(env.now)

        env.process(xfer())
        env.process(xfer())
        env.run()
        # LAN is uncapped: both complete as if alone.
        assert done[0] == pytest.approx(done[1])
        assert net.flow_net.links == {}

    def test_zero_size_message_pays_latency_only(self, env, topo):
        net = Network(env, topo, bandwidth_model="fair")
        run(env, net.transfer("west-europe", "east-us", size=0))
        assert env.now == pytest.approx(LAT + OVH)

    def test_total_latency_accounts_contention(self, env, topo):
        """Fair model stats reflect the slowed-down delivery."""
        net = Network(env, topo, bandwidth_model="fair")
        size = 10 * MB

        def xfer():
            yield from net.transfer("west-europe", "east-us", size=size)

        env.process(xfer())
        env.process(xfer())
        env.run()
        per_msg = 2 * size / WAN_BW + LAT + OVH
        assert net.stats.total_latency == pytest.approx(2 * per_msg)

    def test_rpc_rides_fair_flows(self, env, topo):
        net = Network(env, topo, bandwidth_model="fair")
        result = run(
            env,
            net.rpc("west-europe", "east-us", lambda: 7,
                    request_size=MB, response_size=MB),
        )
        assert result == 7
        assert env.now == pytest.approx(2 * (LAT + OVH + MB / WAN_BW))

    def test_estimated_transfer_time_is_load_aware(self, env, topo):
        net = Network(env, topo, bandwidth_model="fair")
        size = 10 * MB
        idle = net.estimated_transfer_time("west-europe", "east-us", size)
        assert idle == pytest.approx(LAT + OVH + size / WAN_BW)

        def holder():
            yield from net.transfer("west-europe", "east-us", size=50 * MB)

        env.process(holder())
        env.run(until=0.1)  # flow now active on the link
        loaded = net.estimated_transfer_time("west-europe", "east-us", size)
        assert loaded == pytest.approx(LAT + OVH + size / (WAN_BW / 2))

    def test_estimator_consumes_no_rng(self, env):
        net = Network(env, azure_4dc_topology(jitter=True),
                      bandwidth_model="fair")
        probe = net.rng.normal(0.0, 1.0)  # burn one draw for a baseline
        for _ in range(50):
            net.estimated_transfer_time("west-europe", "east-us", 10 * MB)
        env2 = Environment()
        net2 = Network(env2, azure_4dc_topology(jitter=True))
        assert net2.rng.normal(0.0, 1.0) == probe
        assert net.one_way_delay("west-europe", "east-us") == pytest.approx(
            net2.one_way_delay("west-europe", "east-us")
        )

    def test_respects_per_flow_rate_cap_from_link_spec(self, env):
        topo = make_topology(["a", "b"], geo_distant_latency=0.01)
        topo.set_link("a", "b", latency=0.01, bandwidth=100 * MB,
                      max_flow_rate=10 * MB)
        net = Network(env, topo, bandwidth_model="fair")
        run(env, net.transfer("a", "b", size=10 * MB))
        # Capped at 10 MB/s despite a 100 MB/s link.
        assert env.now == pytest.approx(0.01 + OVH + 1.0)


class TestSlotsModelRegressions:
    """Satellite bugfixes: estimator purity and end-to-end accounting."""

    def test_round_trip_is_jitter_free_and_rng_pure(self, env):
        """round_trip must not draw from (or perturb) the network stream."""
        net = Network(env, azure_4dc_topology(jitter=True))
        before = [net.round_trip("west-europe", "east-us") for _ in range(100)]
        assert len(set(before)) == 1  # deterministic, jitter-free
        # A fresh network that never called round_trip draws the same
        # jitter sequence: the estimator left the stream untouched.
        env2 = Environment()
        net2 = Network(env2, azure_4dc_topology(jitter=True))
        seq = [net.one_way_delay("west-europe", "east-us") for _ in range(20)]
        ref = [net2.one_way_delay("west-europe", "east-us") for _ in range(20)]
        assert seq == ref

    def test_round_trip_matches_expected_components(self, env, topo):
        net = Network(env, topo)
        assert net.round_trip("west-europe", "east-us") == pytest.approx(
            2 * (LAT + OVH)
        )

    def test_saturated_link_latency_includes_queue_wait(self, env, topo):
        """Regression: reported latency is send->arrival, end to end."""
        net = Network(env, topo, link_concurrency=1)
        size = 10 * MB
        per_leg = LAT + OVH + size / WAN_BW

        def xfer():
            yield from net.transfer("west-europe", "east-us", size=size)

        env.process(xfer())
        env.process(xfer())
        env.run()
        # First message: one leg.  Second: queued behind it, so its
        # end-to-end latency is two legs.  Total = 3 legs, not 2.
        assert net.stats.total_latency == pytest.approx(3 * per_leg)
        assert env.now == pytest.approx(2 * per_leg)

    def test_slots_model_rng_sequence_matches_uncontended(self, env):
        """Slot-model jitter draws keep their order (seed comparability)."""
        net = Network(env, azure_4dc_topology(jitter=True))
        deliveries = []

        def xfer(src, dst):
            msg = yield from net.transfer(src, dst, size=1024)
            deliveries.append((msg.src, msg.dst, env.now))

        def scenario():
            yield from xfer("west-europe", "east-us")
            yield from xfer("east-us", "south-central-us")
            yield from xfer("west-europe", "west-europe")

        run(env, scenario())
        # Reference: the same three draws taken directly from a fresh
        # stream in transfer-call order reproduce the delivery times.
        env2 = Environment()
        net2 = Network(env2, azure_4dc_topology(jitter=True))
        t = 0.0
        for (src, dst, at) in deliveries:
            t += net2.one_way_delay(src, dst, 1024)
            assert at == pytest.approx(t)

    def test_fair_model_stats_keys_unchanged(self, env, topo):
        net = Network(env, topo, bandwidth_model="fair")
        run(env, net.transfer("west-europe", "east-us", size=100))
        assert set(net.stats.as_dict()) == {
            "messages",
            "bytes",
            "local_messages",
            "same_region_messages",
            "geo_distant_messages",
            "total_latency",
            "aborted_transfers",
            "aborted_bytes",
            "retried_transfers",
            "retried_bytes",
        }
