"""Incremental water-filling vs. the global re-solve.

The incremental solver re-solves only the constraint component
reachable from the perturbed link; ``solver="global"`` is the legacy
everything-every-time algorithm, kept as the reference.  These tests pin
their equivalence two ways:

- ``solver="verify"`` runs churn scenarios with a shadow global solve
  after every rebalance, raising :class:`SimulationError` on any rate
  divergence (the solver self-asserts, the test just drives load);
- seeded end-to-end runs under ``"incremental"`` and ``"global"``
  must produce identical completion traces and per-link stats.
"""

import math
import random

import pytest

from repro.cloud.flow import FlowAborted, FlowNetwork
from repro.sim import Environment

SITES = ("a", "b", "c", "d", "e", "f")
LINK_CAP = 100.0


def make_network(env, solver, egress=None, ingress=None):
    egress = egress or {}
    ingress = ingress or {}
    fn = FlowNetwork(
        env,
        site_caps=lambda s: (
            egress.get(s, math.inf),
            ingress.get(s, math.inf),
        ),
        solver=solver,
    )
    for src in SITES:
        for dst in SITES:
            if src != dst:
                fn.link(src, dst, capacity=LINK_CAP)
    return fn


def churn(env, fn, seed, n_flows=120, abort_every=9):
    """Seeded open/complete/abort churn across the mesh; returns a trace.

    Two disjoint site groups ({a,b,c} and {d,e,f}) never exchange flows,
    so the constraint graph holds at least two independent components --
    the case where the incremental solver actually solves *less* than
    the global one and divergence would show.
    """
    rng = random.Random(seed)
    trace = []
    groups = (SITES[:3], SITES[3:])

    def client(i):
        yield env.timeout(rng.random() * 5.0)
        group = groups[i % 2]
        src, dst = rng.sample(group, 2)
        link = fn.link(src, dst, capacity=LINK_CAP)
        flow = link.open(
            size=rng.randrange(50, 2000),
            weight=rng.choice([0.5, 1.0, 2.0]),
            max_rate=rng.choice([math.inf, 30.0, 75.0]),
        )
        if i % abort_every == 0:
            yield env.timeout(rng.random() * 2.0)
            if flow in link.flows:
                link.abort(flow, reason="churn")
        try:
            yield flow.done
            trace.append(("done", i, round(env.now, 6)))
        except FlowAborted:
            trace.append(("aborted", i, round(env.now, 6)))

    for i in range(n_flows):
        env.process(client(i))
    env.run()
    return trace


class TestVerifyModeChurn:
    """solver="verify" self-asserts incremental == global per rebalance."""

    @pytest.mark.parametrize("seed", [1, 17, 423])
    def test_churn_under_site_caps(self, seed):
        env = Environment()
        fn = make_network(
            env,
            "verify",
            egress={"a": 120.0, "d": 60.0},
            ingress={"b": 80.0, "e": 150.0},
        )
        trace = churn(env, fn, seed)
        assert trace  # scenario actually exercised the solver
        assert not fn.active_flows()

    def test_site_outage_mid_churn(self):
        env = Environment()
        fn = make_network(env, "verify", egress={"a": 90.0})

        def nemesis():
            yield env.timeout(3.0)
            fn.site_outage("b", duration=2.0)
            yield env.timeout(4.0)
            fn.site_outage("e", duration=1.0)

        env.process(nemesis())
        churn(env, fn, seed=99)
        assert not fn.active_flows()

    def test_estimate_rate_probes_during_churn(self):
        env = Environment()
        fn = make_network(env, "verify", ingress={"c": 70.0})

        def prober():
            while env.now < 8.0:
                yield env.timeout(0.7)
                # verify mode cross-checks the probe against a global
                # solve; any divergence raises inside estimate_rate.
                rate = fn.estimate_rate("a", "c", capacity=LINK_CAP)
                assert 0.0 < rate <= 70.0

        env.process(prober())
        churn(env, fn, seed=5)


class TestIncrementalEqualsGlobal:
    """Same seed, both solvers: identical end-to-end behavior."""

    @pytest.mark.parametrize("seed", [2, 31])
    def test_identical_traces_and_stats(self, seed):
        results = {}
        for solver in ("incremental", "global"):
            env = Environment()
            fn = make_network(
                env,
                solver,
                egress={"a": 110.0, "f": 40.0},
                ingress={"b": 95.0},
            )
            trace = churn(env, fn, seed)
            stats = {
                key: (
                    link.stats.flows,
                    link.stats.bytes,
                    round(link.stats.delivered_bytes, 6),
                    round(link.stats.aborted_bytes, 6),
                    link.stats.aborted_flows,
                )
                for key, link in fn.links.items()
            }
            # round(): the two solvers sum shares in different orders,
            # so completion instants may drift by ~1 ulp.
            results[solver] = (trace, stats, round(env.now, 6))
        assert results["incremental"] == results["global"]

    def test_incremental_touches_fewer_links(self):
        """The point of the exercise: disjoint components stay untouched.

        A flow opened between {a,b} must not settle or re-solve the
        {d,e}-component link under the incremental solver (the global
        solver rebalances everything, every time).
        """
        env = Environment()
        fn = make_network(env, "incremental")
        far = fn.link("d", "e", capacity=LINK_CAP)
        far.open(size=10_000)
        far_rebalances = far.stats.rebalances
        near = fn.link("a", "b", capacity=LINK_CAP)
        for _ in range(10):
            near.open(size=500)
        assert far.stats.rebalances == far_rebalances
        env.run()

    def test_shared_cap_couples_components(self):
        """Links joined through a site cap DO rebalance together."""
        env = Environment()
        fn = make_network(env, "incremental", egress={"a": 50.0})
        ab = fn.link("a", "b", capacity=LINK_CAP)
        ac = fn.link("a", "c", capacity=LINK_CAP)
        f1 = ab.open(size=1000)
        assert f1.rate == pytest.approx(50.0)
        before = ac.stats.rebalances
        f2 = ac.open(size=1000)
        # Opening on a->c re-solved a->b too: the egress cap is shared.
        assert ab.stats.rebalances > 0
        assert f1.rate == pytest.approx(25.0)
        assert f2.rate == pytest.approx(25.0)
        assert before == 0
        env.run()


class TestSolverSelection:
    def test_unknown_solver_rejected(self):
        with pytest.raises(ValueError, match="unknown solver"):
            FlowNetwork(Environment(), solver="quantum")

    def test_network_exposes_flow_solver(self):
        from repro.cloud.network import Network
        from repro.cloud.presets import azure_4dc_topology

        net = Network(
            Environment(),
            azure_4dc_topology(jitter=False),
            bandwidth_model="fair",
            flow_solver="verify",
        )
        assert net.flow_net.solver == "verify"
