"""Additional network-model tests: stats breakdowns, RPC sizes, slots."""

import pytest

from repro.cloud.network import Network, NetworkStats
from repro.cloud.presets import azure_4dc_topology, make_topology
from repro.sim import Environment
from repro.util.units import MB


def run(env, gen):
    return env.run(until=env.process(gen))


class TestStats:
    def test_as_dict_keys(self):
        d = NetworkStats().as_dict()
        assert {
            "messages",
            "bytes",
            "local_messages",
            "same_region_messages",
            "geo_distant_messages",
            "total_latency",
            "aborted_transfers",
            "aborted_bytes",
            "retried_transfers",
            "retried_bytes",
        } == set(d)

    def test_total_latency_accumulates(self, env):
        net = Network(env, azure_4dc_topology(jitter=False))
        run(env, net.transfer("west-europe", "east-us"))
        run(env, net.transfer("west-europe", "east-us"))
        assert net.stats.total_latency >= 2 * 0.040


class TestRpcSizes:
    def test_large_payload_pays_bandwidth_both_ways(self, env):
        net = Network(env, azure_4dc_topology(jitter=False))

        def tiny():
            return (yield from net.rpc(
                "west-europe", "east-us", lambda: None,
                request_size=0, response_size=0,
            ))

        def bulky():
            return (yield from net.rpc(
                "west-europe", "east-us", lambda: None,
                request_size=25 * MB, response_size=25 * MB,
            ))

        run(env, tiny())
        t_small = env.now
        env2 = Environment()
        net2 = Network(env2, azure_4dc_topology(jitter=False))

        def bulky2():
            return (yield from net2.rpc(
                "west-europe", "east-us", lambda: None,
                request_size=25 * MB, response_size=25 * MB,
            ))

        env2.run(until=env2.process(bulky2()))
        # 50 MB total over a 50 MB/s link adds about a second.
        assert env2.now > t_small + 0.9


class TestLinkSlots:
    def test_slots_are_per_direction(self, env):
        net = Network(env, azure_4dc_topology(jitter=False), link_concurrency=1)
        done = []

        def fwd():
            yield from net.transfer("west-europe", "east-us")
            done.append(("fwd", env.now))

        def bwd():
            yield from net.transfer("east-us", "west-europe")
            done.append(("bwd", env.now))

        env.process(fwd())
        env.process(bwd())
        env.run()
        # Opposite directions never contend.
        times = dict(done)
        assert abs(times["fwd"] - times["bwd"]) < 1e-9

    def test_same_direction_contends(self, env):
        net = Network(env, azure_4dc_topology(jitter=False), link_concurrency=1)
        done = []

        def xfer():
            yield from net.transfer("west-europe", "east-us", size=10 * MB)
            done.append(env.now)

        env.process(xfer())
        env.process(xfer())
        env.run()
        assert done[1] > done[0] * 1.5


class TestUniformTopologies:
    def test_round_trip_symmetric(self, env):
        topo = make_topology(["a", "b"], geo_distant_latency=0.05)
        net = Network(env, topo)
        assert net.round_trip("a", "b") == pytest.approx(
            net.round_trip("b", "a")
        )
