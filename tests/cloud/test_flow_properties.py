"""Property-based tests of the hierarchical fair-share flow model.

Randomized flow arrivals/departures/aborts over a multi-link topology
with site egress/ingress caps and heterogeneous weights, checking the
model's structural invariants at every event instead of pinned values:

(a) **link capacity**: the sum of active flow rates on each directed
    link never exceeds its capacity;
(b) **site caps**: each site's aggregate egress (ingress) rate never
    exceeds its cap;
(c) **weighted max-min**: every active flow is either at its own rate
    cap or covered by at least one *saturated* constraint -- so no flow
    could gain rate without a bottlenecked flow losing -- and within a
    saturated constraint no flow is below the constraint's bottleneck
    water level (rate/weight) while another sits above it;
(d) **conservation**: once every flow has closed,
    ``delivered_bytes + aborted_bytes == bytes opened``, per link and
    in aggregate.

The scenario generator is seeded (numpy Generator) so failures are
reproducible; several seeds run as parametrized cases.
"""

import math

import numpy as np
import pytest

from repro.cloud.flow import FlowAborted, FlowNetwork
from repro.sim import Environment

RTOL = 1e-9
SITES = ("a", "b", "c", "d")
LINK_CAP = 100.0


def make_network(env, egress, ingress):
    """A full mesh over SITES with the given per-site cap maps."""
    fn = FlowNetwork(
        env,
        site_caps=lambda s: (
            egress.get(s, math.inf),
            ingress.get(s, math.inf),
        ),
    )
    for src in SITES:
        for dst in SITES:
            if src != dst:
                fn.link(src, dst, capacity=LINK_CAP)
    return fn


def check_invariants(fn, egress, ingress):
    """Assert (a), (b) and (c) on the current rate assignment."""
    links = [l for l in fn.links.values() if l.flows]
    flows = [f for l in links for f in l.flows]
    if not flows:
        return

    # -- (a) link capacity --------------------------------------------------
    saturated = []  # constraint sets whose capacity is (about) used up
    for link in links:
        total = sum(f.rate for f in link.flows)
        assert total <= link.capacity * (1 + RTOL), (
            f"link {link.src}->{link.dst} oversubscribed: "
            f"{total} > {link.capacity}"
        )
        if total >= link.capacity * (1 - 1e-6):
            saturated.append(list(link.flows))

    # -- (b) site egress/ingress caps ---------------------------------------
    for site in SITES:
        out = [f for f in flows if f.link.src == site]
        inn = [f for f in flows if f.link.dst == site]
        cap_out = egress.get(site, math.inf)
        cap_in = ingress.get(site, math.inf)
        total_out = sum(f.rate for f in out)
        total_in = sum(f.rate for f in inn)
        assert total_out <= cap_out * (1 + RTOL), (
            f"egress cap of {site} exceeded: {total_out} > {cap_out}"
        )
        assert total_in <= cap_in * (1 + RTOL), (
            f"ingress cap of {site} exceeded: {total_in} > {cap_in}"
        )
        if math.isfinite(cap_out) and out and (
            total_out >= cap_out * (1 - 1e-6)
        ):
            saturated.append(out)
        if math.isfinite(cap_in) and inn and (
            total_in >= cap_in * (1 - 1e-6)
        ):
            saturated.append(inn)

    # -- (c) weighted max-min -----------------------------------------------
    # Bottleneck characterization of weighted max-min fairness: every
    # flow is either at its own rate cap, or there is a *saturated*
    # constraint containing it in which its normalized rate
    # (rate/weight) is maximal.  Then the flow cannot gain rate without
    # shrinking a flow of <= its normalized share inside a full
    # constraint -- i.e. without a bottlenecked, >=-weight-share flow
    # losing.  A flow satisfying neither condition disproves max-min.
    for f in flows:
        if f.rate >= f.max_rate * (1 - 1e-6):
            continue
        normalized = f.rate / f.weight
        bottleneck = any(
            f in group
            and normalized
            >= max(g.rate / g.weight for g in group) * (1 - 1e-6)
            for group in saturated
        )
        assert bottleneck, (
            f"{f!r} is neither capped nor maximal in any saturated "
            "constraint -- it could gain rate for free"
        )


def random_scenario(seed, egress, ingress, n_flows=60, horizon=30.0):
    """Run a randomized open/abort/complete schedule; check invariants."""
    env = Environment()
    fn = make_network(env, egress, ingress)
    rng = np.random.default_rng(seed)
    opened = []
    closed = {"delivered": 0.0, "aborted": 0.0, "opened": 0}

    def waiter(flow):
        try:
            yield flow.done
        except FlowAborted:
            pass

    def driver():
        active = []
        for _ in range(n_flows):
            yield env.timeout(float(rng.uniform(0.0, horizon / n_flows)))
            src, dst = rng.choice(len(SITES), size=2, replace=False)
            link = fn.link(SITES[src], SITES[dst], capacity=LINK_CAP)
            size = int(rng.integers(1, 400))
            weight = float(rng.choice([0.5, 1.0, 1.0, 2.0, 4.0]))
            max_rate = (
                float(rng.uniform(5.0, 60.0))
                if rng.random() < 0.3
                else math.inf
            )
            flow = link.open(size, max_rate=max_rate, weight=weight)
            closed["opened"] += size
            opened.append(flow)
            env.process(waiter(flow))
            active.append((link, flow))
            check_invariants(fn, egress, ingress)
            # Occasionally tear one active flow down mid-flight.
            if active and rng.random() < 0.15:
                idx = int(rng.integers(len(active)))
                link_i, flow_i = active.pop(idx)
                if flow_i in link_i.flows:
                    link_i.abort(flow_i)
                    check_invariants(fn, egress, ingress)
            active = [
                (l, f) for (l, f) in active if f in l.flows
            ]

    env.process(driver())
    env.run()
    # All flows closed: nothing left active anywhere.
    assert all(not l.flows for l in fn.links.values())
    return fn, closed


CAP_SETS = [
    ({}, {}),  # uncapped: pure per-link sharing
    ({"a": 120.0, "b": 80.0}, {}),  # egress-capped senders
    ({}, {"c": 90.0, "d": 60.0}),  # ingress-capped receivers
    ({"a": 110.0, "c": 70.0}, {"b": 100.0, "d": 80.0}),  # both
]


@pytest.mark.parametrize("seed", [0, 1, 7])
@pytest.mark.parametrize("caps", CAP_SETS, ids=["open", "egress", "ingress", "both"])
def test_random_arrivals_respect_all_invariants(seed, caps):
    egress, ingress = caps
    random_scenario(seed, egress, ingress)


@pytest.mark.parametrize("seed", [3, 11])
def test_conservation_delivered_plus_aborted_equals_opened(seed):
    egress, ingress = {"a": 100.0}, {"b": 90.0}
    fn, closed = random_scenario(seed, egress, ingress)
    total_opened = 0
    total_delivered = 0.0
    total_aborted = 0.0
    for link in fn.links.values():
        s = link.stats
        # Per-link conservation once the link drained.
        assert s.delivered_bytes + s.aborted_bytes == pytest.approx(
            s.bytes, rel=1e-9
        )
        total_opened += s.bytes
        total_delivered += s.delivered_bytes
        total_aborted += s.aborted_bytes
    assert total_opened == closed["opened"]
    assert total_delivered + total_aborted == pytest.approx(
        total_opened, rel=1e-9
    )


def test_weighted_share_is_proportional_on_shared_bottleneck():
    """A weight-2 flow sustains twice a weight-1 flow's rate."""
    env = Environment()
    fn = make_network(env, {}, {})
    link = fn.link("a", "b", capacity=LINK_CAP)
    light = link.open(1000, weight=1.0)
    heavy = link.open(1000, weight=2.0)
    assert heavy.rate == pytest.approx(2 * light.rate)
    assert light.rate + heavy.rate == pytest.approx(LINK_CAP)


def test_egress_cap_binds_across_links():
    """Two links out of one site share that site's egress cap."""
    env = Environment()
    egress = {"a": 60.0}
    fn = make_network(env, egress, {})
    f1 = fn.link("a", "b", capacity=LINK_CAP).open(1000)
    f2 = fn.link("a", "c", capacity=LINK_CAP).open(1000)
    # Egress 60 split two ways; each link alone could do 100.
    assert f1.rate == pytest.approx(30.0)
    assert f2.rate == pytest.approx(30.0)
    check_invariants(fn, egress, {})


def test_ingress_cap_binds_across_links():
    env = Environment()
    ingress = {"c": 40.0}
    fn = make_network(env, {}, ingress)
    f1 = fn.link("a", "c", capacity=LINK_CAP).open(1000)
    f2 = fn.link("b", "c", capacity=LINK_CAP).open(1000)
    assert f1.rate + f2.rate == pytest.approx(40.0)
    check_invariants(fn, {}, ingress)


def test_estimator_matches_realized_rate_under_site_caps():
    """estimate_rate is exact: a new flow gets exactly the estimate."""
    env = Environment()
    egress = {"a": 70.0}
    fn = make_network(env, egress, {})
    fn.link("a", "b", capacity=LINK_CAP).open(10_000)
    fn.link("a", "c", capacity=LINK_CAP).open(10_000)
    est = fn.estimate_rate("a", "b", capacity=LINK_CAP)
    flow = fn.link("a", "b", capacity=LINK_CAP).open(10_000)
    assert flow.rate == pytest.approx(est)
