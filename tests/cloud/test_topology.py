"""Tests for datacenters, regions and the distance taxonomy."""

import pytest

from repro.cloud.presets import AZURE_4DC, azure_4dc_topology, make_topology
from repro.cloud.topology import CloudTopology, Datacenter, Distance, Region


class TestDistance:
    def test_local(self):
        eu = Region("eu")
        a = Datacenter("a", eu)
        assert a.distance_to(a) is Distance.LOCAL
        assert not Distance.LOCAL.is_remote

    def test_same_region(self):
        eu = Region("eu")
        a, b = Datacenter("a", eu), Datacenter("b", eu)
        assert a.distance_to(b) is Distance.SAME_REGION
        assert Distance.SAME_REGION.is_remote

    def test_geo_distant(self):
        a = Datacenter("a", Region("eu"))
        b = Datacenter("b", Region("us"))
        assert a.distance_to(b) is Distance.GEO_DISTANT


class TestTopology:
    def test_duplicate_names_rejected(self):
        eu = Region("eu")
        with pytest.raises(ValueError):
            CloudTopology([Datacenter("a", eu), Datacenter("a", eu)])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            CloudTopology([])

    def test_unknown_site_lookup(self, topo):
        with pytest.raises(KeyError):
            topo.get("mars-central")

    def test_link_symmetry(self, topo):
        for a in AZURE_4DC:
            for b in AZURE_4DC:
                if a != b:
                    assert topo.latency(a, b) == topo.latency(b, a)

    def test_local_link_is_fastest(self, topo):
        local = topo.latency("west-europe", "west-europe")
        for other in AZURE_4DC[1:]:
            assert topo.latency("west-europe", other) > local

    def test_missing_link_raises(self):
        eu = Region("eu")
        topo = CloudTopology([Datacenter("a", eu), Datacenter("b", eu)])
        with pytest.raises(KeyError):
            topo.latency("a", "b")
        with pytest.raises(ValueError):
            topo.validate()

    def test_self_link_rejected(self, topo):
        with pytest.raises(ValueError):
            topo.set_link("west-europe", "west-europe", latency=0.001)


class TestAzurePreset:
    def test_four_sites(self, topo):
        assert len(topo) == 4
        assert set(dc.name for dc in topo) == set(AZURE_4DC)

    def test_distance_classes(self, topo):
        assert topo.distance("west-europe", "north-europe") is Distance.SAME_REGION
        assert topo.distance("east-us", "south-central-us") is Distance.SAME_REGION
        assert topo.distance("west-europe", "east-us") is Distance.GEO_DISTANT

    def test_latency_hierarchy(self, topo):
        """local << same-region << geo-distant (the Fig. 1 ordering)."""
        local = topo.latency("west-europe", "west-europe")
        same_region = topo.latency("west-europe", "north-europe")
        distant = topo.latency("west-europe", "east-us")
        assert local * 5 < same_region < distant
        assert distant / local >= 50  # the paper's "up to 50x" remote cost

    def test_centrality_matches_paper(self, topo):
        """Section VI-B: East US most central, South Central US least."""
        assert topo.most_central().name == "east-us"
        assert topo.least_central().name == "south-central-us"

    def test_validates(self, topo):
        topo.validate()


class TestMakeTopology:
    def test_regions_grouping(self):
        topo = make_topology(
            ["a", "b", "c"],
            regions={"a": "eu", "b": "eu", "c": "us"},
            same_region_latency=0.01,
            geo_distant_latency=0.05,
        )
        assert topo.distance("a", "b") is Distance.SAME_REGION
        assert topo.latency("a", "b") == 0.01
        assert topo.latency("a", "c") == 0.05

    def test_default_singleton_regions(self):
        topo = make_topology(["a", "b"])
        assert topo.distance("a", "b") is Distance.GEO_DISTANT

    def test_empty_sites_rejected(self):
        with pytest.raises(ValueError):
            make_topology([])


class TestTopologyCopy:
    def test_copy_is_equal_but_independent(self):
        topo = azure_4dc_topology()
        clone = topo.copy()
        assert [dc.name for dc in clone] == [dc.name for dc in topo]
        assert clone.latency("west-europe", "east-us") == topo.latency(
            "west-europe", "east-us"
        )
        clone.validate()

    def test_latency_edits_do_not_leak_to_the_original(self):
        """The fault injectors' in-place latency edits stay contained."""
        topo = azure_4dc_topology()
        clone = topo.copy()
        before = topo.link("west-europe", "east-us").latency
        clone.link("west-europe", "east-us").latency *= 10
        assert topo.link("west-europe", "east-us").latency == before

    def test_site_cap_edits_do_not_leak_to_the_original(self):
        """The Deployment site-cap footgun: capping the copy leaves the
        caller-supplied original uncapped."""
        import math

        topo = azure_4dc_topology()
        clone = topo.copy()
        clone.set_site_caps("east-us", egress_bw=1.0, ingress_bw=2.0)
        assert topo.site_caps("east-us") == (math.inf, math.inf)
        assert clone.site_caps("east-us") == (1.0, 2.0)
        # And the reverse direction: original edits stay out of the copy.
        topo.set_site_caps("west-europe", egress_bw=5.0)
        assert clone.site_caps("west-europe")[0] == math.inf

    def test_local_link_is_independent(self):
        topo = azure_4dc_topology()
        clone = topo.copy()
        clone.local_link.latency *= 100
        assert topo.local_link.latency != clone.local_link.latency

    def test_copied_topology_drives_a_deployment(self):
        from repro.cloud.deployment import Deployment

        topo = azure_4dc_topology()
        dep = Deployment(
            topology=topo.copy(),
            n_nodes=4,
            site_egress_bw=10.0,
        )
        # Deployment mutated its own copy, not the caller's topology.
        import math

        assert topo.site_caps("east-us") == (math.inf, math.inf)
        assert dep.topology.site_caps("east-us")[0] == 10.0
