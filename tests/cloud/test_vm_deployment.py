"""Tests for VirtualMachine and Deployment provisioning."""

import pytest

from repro.cloud.deployment import Deployment
from repro.cloud.presets import AZURE_4DC, azure_4dc_topology
from repro.cloud.topology import Datacenter, Region
from repro.cloud.vm import VirtualMachine, VMRole, VMSize


class TestVMSize:
    def test_validation(self):
        with pytest.raises(ValueError):
            VMSize("bad", cores=0, memory=1)
        with pytest.raises(ValueError):
            VMSize("bad", cores=1, memory=0)


class TestVirtualMachine:
    def test_compute_occupies_core(self, env):
        dc = Datacenter("dc", Region("r"))
        vm = VirtualMachine(env, "vm-0", dc, VMSize("s", 1, 1024))
        done = []

        def job(d):
            yield from vm.compute(d)
            done.append(env.now)

        env.process(job(2.0))
        env.process(job(3.0))
        env.run()
        # Single core: jobs serialize.
        assert done == [2.0, 5.0]
        assert vm.tasks_executed == 2
        assert vm.busy_time == pytest.approx(5.0)

    def test_multicore_parallel(self, env):
        dc = Datacenter("dc", Region("r"))
        vm = VirtualMachine(env, "vm-0", dc, VMSize("m", 2, 1024))
        done = []

        def job():
            yield from vm.compute(2.0)
            done.append(env.now)

        env.process(job())
        env.process(job())
        env.run()
        assert done == [2.0, 2.0]

    def test_negative_duration_rejected(self, env):
        dc = Datacenter("dc", Region("r"))
        vm = VirtualMachine(env, "vm-0", dc)

        def job():
            yield from vm.compute(-1)

        proc = env.process(job())
        with pytest.raises(ValueError):
            env.run(until=proc)

    def test_utilization(self, env):
        dc = Datacenter("dc", Region("r"))
        vm = VirtualMachine(env, "vm-0", dc, VMSize("s", 1, 1024))

        def job():
            yield from vm.compute(4.0)

        env.process(job())
        env.run(until=8.0)
        assert vm.utilization() == pytest.approx(0.5)


class TestDeployment:
    def test_round_robin_placement(self):
        dep = Deployment(n_nodes=8, seed=1)
        per_site = {s: len(dep.workers_at(s)) for s in dep.sites}
        assert per_site == {s: 2 for s in AZURE_4DC}

    def test_uneven_counts(self):
        dep = Deployment(n_nodes=6, seed=1)
        counts = sorted(len(dep.workers_at(s)) for s in dep.sites)
        assert counts == [1, 1, 2, 2]
        assert dep.n_nodes == 6

    def test_default_small_vm(self):
        dep = Deployment(n_nodes=2)
        assert dep.workers[0].size.cores == 1

    def test_invalid_node_count(self):
        with pytest.raises(ValueError):
            Deployment(n_nodes=0)

    def test_core_limit_enforced(self):
        """Azure's 300-core deployment cap forces multi-site (Section II-B)."""
        topo = azure_4dc_topology()
        # A single-site topology cannot host 301 single-core workers.
        from repro.cloud.presets import make_topology

        single = make_topology(["only-site"])
        with pytest.raises(ValueError, match="[Cc]ore limit"):
            Deployment(topology=single, n_nodes=301)
        # Spread across 4 sites, 301 nodes are fine.
        Deployment(topology=topo, n_nodes=301)

    def test_control_node_exists(self):
        dep = Deployment(n_nodes=4)
        assert dep.control_node.role is VMRole.CONTROL

    def test_deterministic_rng_streams(self):
        a = Deployment(n_nodes=4, seed=9)
        b = Deployment(n_nodes=4, seed=9)
        assert a.rng.get("x").integers(1000) == b.rng.get("x").integers(1000)
