"""Unit tests for the metrics plane: counters, gauges, sketches."""

import numpy as np
import pytest

from repro.obs import MetricsRegistry, P2Quantile, ReservoirHistogram


class TestCounterGauge:
    def test_counter(self):
        reg = MetricsRegistry()
        c = reg.counter("ops")
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5
        assert reg.counter("ops") is c  # get-or-create

    def test_gauge_direct_and_callback(self):
        reg = MetricsRegistry()
        g = reg.gauge("depth")
        g.set(7.0)
        assert g.value() == 7.0
        backing = [3]
        via_fn = reg.gauge("queue", fn=lambda: backing[0])
        assert via_fn.value() == 3.0
        backing[0] = 9
        assert via_fn.value() == 9.0


class TestReservoirHistogram:
    def test_exact_while_stream_fits(self):
        """Quantiles match numpy.percentile exactly when n <= capacity."""
        h = ReservoirHistogram("t", capacity=256)
        values = [((i * 37) % 101) / 7.0 for i in range(200)]
        for v in values:
            h.add(v)
        for q in (0, 1, 25, 50, 75, 90, 99, 100):
            assert h.quantile(q) == pytest.approx(
                float(np.percentile(values, q)), abs=1e-12
            )
        assert h.mean() == pytest.approx(float(np.mean(values)))
        assert h.min == min(values)
        assert h.max == max(values)

    def test_memory_bounded_beyond_capacity(self):
        h = ReservoirHistogram("t", capacity=64)
        for i in range(10_000):
            h.add(float(i))
        assert len(h._samples) == 64
        assert h.n == 10_000
        # min/max/mean stay exact regardless of sampling.
        assert h.min == 0.0
        assert h.max == 9999.0
        assert h.mean() == pytest.approx(4999.5)

    def test_rank_error_within_documented_bound(self):
        """Median of a uniform stream lands within ~4 sigma of rank error."""
        cap = 512
        h = ReservoirHistogram("uniform", capacity=cap)
        n = 20_000
        for i in range(n):
            h.add(((i * 48271) % n) / n)  # uniform-ish permutation
        # documented: rank error ~ sqrt(q(1-q)/capacity); 4x at q=0.5
        tolerance = 4 * (0.25 / cap) ** 0.5
        assert abs(h.quantile(50) - 0.5) < tolerance
        assert abs(h.quantile(90) - 0.9) < tolerance

    def test_deterministic_and_name_seeded(self):
        a1 = ReservoirHistogram("same", capacity=32)
        a2 = ReservoirHistogram("same", capacity=32)
        b = ReservoirHistogram("other", capacity=32)
        for i in range(1000):
            for h in (a1, a2, b):
                h.add(float(i))
        assert a1._samples == a2._samples  # replayable
        assert a1._samples != b._samples  # decorrelated by name

    def test_empty_and_validation(self):
        h = ReservoirHistogram("t")
        assert h.quantile(50) == 0.0
        assert h.mean() == 0.0
        assert h.export()["count"] == 0.0
        with pytest.raises(ValueError):
            h.quantile(101)
        with pytest.raises(ValueError):
            h.quantile(-1)
        with pytest.raises(ValueError):
            ReservoirHistogram("t", capacity=0)

    def test_export_keys(self):
        h = ReservoirHistogram("t")
        h.add(1.0)
        h.add(3.0)
        doc = h.export()
        assert set(doc) == {
            "count", "mean", "min", "max", "p50", "p90", "p99",
        }
        assert doc["count"] == 2.0
        assert doc["p50"] == 2.0


class TestP2Quantile:
    def test_exact_under_five_samples(self):
        p = P2Quantile(0.5)
        for v in (5.0, 1.0, 3.0):
            p.add(v)
        assert p.value() == 3.0
        assert len(p) == 3

    def test_close_to_numpy_on_long_stream(self):
        p50, p90 = P2Quantile(0.5), P2Quantile(0.9)
        values = [((i * 7919) % 10_000) / 100.0 for i in range(10_000)]
        for v in values:
            p50.add(v)
            p90.add(v)
        assert p50.value() == pytest.approx(
            float(np.percentile(values, 50)), rel=0.05
        )
        assert p90.value() == pytest.approx(
            float(np.percentile(values, 90)), rel=0.05
        )

    def test_validation_and_empty(self):
        with pytest.raises(ValueError):
            P2Quantile(0.0)
        with pytest.raises(ValueError):
            P2Quantile(1.0)
        assert P2Quantile(0.5).value() == 0.0


class TestMetricsRegistry:
    def test_interval_gated_sampling(self):
        reg = MetricsRegistry(sample_interval=1.0)
        reg.counter("ops").inc()
        reg.maybe_sample(0.0)
        reg.maybe_sample(0.5)  # inside the interval: no new sample
        reg.counter("ops").inc()
        reg.maybe_sample(1.5)
        assert [(t, v["ops"]) for t, v in reg.series] == [
            (0.0, 1.0),
            (1.5, 2.0),
        ]

    def test_force_sample_ignores_gate(self):
        reg = MetricsRegistry(sample_interval=100.0)
        reg.maybe_sample(0.0)
        reg.sample(1.0, force=True)
        assert len(reg.series) == 2

    def test_series_capped(self):
        reg = MetricsRegistry(sample_interval=1.0)
        reg._MAX_SAMPLES = 5
        for i in range(10):
            reg.maybe_sample(float(i))
        assert len(reg.series) == 5

    def test_export_structure(self):
        reg = MetricsRegistry()
        reg.counter("c").inc(2)
        reg.gauge("g").set(4.0)
        reg.histogram("h").add(1.0)
        reg.sample(0.0, force=True)
        doc = reg.export()
        assert doc["counters"] == {"c": 2.0}
        assert doc["gauges"] == {"g": 4.0}
        assert doc["histograms"]["h"]["count"] == 1.0
        assert doc["series"] == [{"t": 0.0, "values": {"c": 2.0, "g": 4.0}}]

    def test_histogram_capacity_passthrough(self):
        reg = MetricsRegistry(histogram_capacity=8)
        assert reg.histogram("h").capacity == 8
        assert reg.histogram("big", capacity=32).capacity == 32

    def test_sample_interval_validated(self):
        with pytest.raises(ValueError):
            MetricsRegistry(sample_interval=0.0)


class TestDegenerateInputSentinels:
    """Empty sketches and zero-length series answer with documented
    sentinels, never exceptions -- analysis code paths that run before
    any sample lands must not crash a finished run."""

    def test_empty_histogram_quantiles_are_zero(self):
        h = ReservoirHistogram("empty")
        for q in (0, 50, 100):
            assert h.quantile(q) == 0.0
        assert h.mean() == 0.0

    def test_empty_histogram_still_validates_q(self):
        # The sentinel covers emptiness, not malformed queries.
        with pytest.raises(ValueError):
            ReservoirHistogram("empty").quantile(101)

    def test_empty_p2_value_is_zero(self):
        assert P2Quantile(0.9).value() == 0.0

    def test_series_stats_empty_sentinel(self):
        reg = MetricsRegistry()
        zero = {
            "count": 0.0, "t0": 0.0, "t1": 0.0,
            "min": 0.0, "max": 0.0, "last": 0.0,
        }
        assert reg.series_stats("never-sampled") == zero
        # Known counter, but nothing sampled yet: same sentinel.
        reg.counter("ops").inc()
        assert reg.series_stats("ops") == zero

    def test_series_stats_summarizes_samples(self):
        reg = MetricsRegistry(sample_interval=1.0)
        c = reg.counter("ops")
        c.inc(2)
        reg.maybe_sample(0.0)
        c.inc(3)
        reg.maybe_sample(2.0)
        assert reg.series_stats("ops") == {
            "count": 2.0, "t0": 0.0, "t1": 2.0,
            "min": 2.0, "max": 5.0, "last": 5.0,
        }
