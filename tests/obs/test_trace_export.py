"""Exporter contracts: every event shape survives JSONL, Chrome lanes
are named, and the trace CLI rejects malformed category selections."""

import json

import pytest

from repro.cli import main
from repro.obs import chrome_trace_doc, events_jsonl
from repro.scenario import ObservabilitySpec, get_scenario


@pytest.fixture(scope="module")
def traced_workload():
    """A fully-traced multi-tenant run: exercises every event shape."""
    spec = get_scenario("multi_tenant_8").replace(
        observability=ObservabilitySpec(enabled=True)
    )
    return spec.run(quick=True)


class TestJsonlRoundTrip:
    #: (cat, name) -> keys every record of that shape must carry.
    SHAPES = {
        ("workload", "submit"): {"tenant", "run"},
        ("workload", "admit"): {"tenant", "run", "wait", "in_flight"},
        ("workload", "complete"): {"tenant", "run", "makespan"},
        ("registry", "slot_wait"): {"site", "wait", "queue"},
        ("span", "task"): {"ph", "dur", "id", "task", "vm", "site", "run"},
        ("span", "stage"): {"ph", "dur", "id", "parent"},
        ("span", "publish"): {"ph", "dur", "id", "parent"},
        ("span", "transfer"): {"ph", "dur", "id", "src", "dst", "size"},
        ("span", "rpc"): {"ph", "dur", "id", "src", "dst"},
    }

    def test_every_line_parses_and_known_shapes_keep_keys(
        self, traced_workload
    ):
        lines = list(events_jsonl(traced_workload.tracer))
        assert lines
        seen = set()
        for line in lines:
            rec = json.loads(line)  # every line must parse alone
            assert {"ts", "cat", "name"} <= rec.keys()
            shape = (rec["cat"], rec["name"])
            seen.add(shape)
            expected = self.SHAPES.get(shape)
            if expected is not None:
                missing = expected - rec.keys()
                assert not missing, f"{shape} lost keys {missing}"
        # The run must actually have produced every catalogued shape.
        assert set(self.SHAPES) <= seen

    def test_line_count_matches_tracer_contents(self, traced_workload):
        tracer = traced_workload.tracer
        lines = list(events_jsonl(tracer))
        assert len(lines) == len(tracer.events) + len(tracer.spans)

    def test_span_records_reconstruct_durations(self, traced_workload):
        for line in events_jsonl(traced_workload.tracer):
            rec = json.loads(line)
            if rec.get("ph") == "span":
                assert rec["dur"] >= 0
                assert rec["id"] >= 0


class TestChromeLaneMetadata:
    def test_every_lane_has_a_thread_name_record(self, traced_workload):
        doc = chrome_trace_doc(traced_workload.tracer)
        events = doc["traceEvents"]
        named = {
            e["tid"]: e["args"]["name"]
            for e in events
            if e["ph"] == "M" and e["name"] == "thread_name"
        }
        used = {e["tid"] for e in events if e["ph"] != "M"}
        assert used, "trace has no records"
        assert used <= set(named), "unnamed lanes in the trace"
        # Lane names are the vm/site/category labels, never empty.
        assert all(named.values())

    def test_process_name_metadata_present(self, traced_workload):
        doc = chrome_trace_doc(traced_workload.tracer)
        procs = [
            e
            for e in doc["traceEvents"]
            if e["ph"] == "M" and e["name"] == "process_name"
        ]
        assert len(procs) == 1
        assert procs[0]["args"]["name"] == "repro-sim"


class TestTraceCategoriesCli:
    def test_unknown_category_exits_2(self, capsys, tmp_path):
        rc = main(
            [
                "trace", "fanout_bandwidth_aware", "--quick",
                "--categories", "kernel,bogus",
                "--out", str(tmp_path / "t.json"),
            ]
        )
        assert rc == 2
        assert "unknown trace categories" in capsys.readouterr().err

    def test_empty_category_list_exits_2(self, capsys, tmp_path):
        """`--categories ,` selects nothing: a config mistake, not a
        silent all-categories fallback."""
        rc = main(
            [
                "trace", "fanout_bandwidth_aware", "--quick",
                "--categories", ",",
                "--out", str(tmp_path / "t.json"),
            ]
        )
        assert rc == 2
        assert "categories" in capsys.readouterr().err

    def test_category_with_no_events_yields_valid_empty_doc(
        self, capsys, tmp_path
    ):
        """A real category that never fires on this surface (workload
        events on a single-workflow run) must still export valid JSON
        -- just with no trace records beyond the metadata."""
        out = tmp_path / "t.json"
        rc = main(
            [
                "trace", "fanout_bandwidth_aware", "--quick",
                "--categories", "workload",
                "--out", str(out),
            ]
        )
        assert rc == 0
        doc = json.loads(out.read_text())
        assert [e for e in doc["traceEvents"] if e["ph"] != "M"] == []
