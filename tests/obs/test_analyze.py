"""Trace analysis: critical paths, attribution, utilization.

The analyzer duck-types the tracer (``spans``/``events``/``dropped``),
so the unit tests drive it with hand-built span graphs; the
integration tests run real traced scenarios and pin the two load-
bearing contracts: buckets partition the observed makespan exactly,
and analysis never perturbs the simulation.
"""

import pytest

from repro.obs import (
    ATTRIBUTION_BUCKETS,
    RunAnalysis,
    analyze_tracer,
    concurrency_profile,
)
from repro.obs.analyze import _critical_path
from repro.results import result_metrics
from repro.scenario import ObservabilitySpec, get_scenario


class FakeSpan:
    """Just the attributes analyze_tracer reads."""

    _next = [0]

    def __init__(self, name, start, end, parent=None, **args):
        self.id = FakeSpan._next[0]
        FakeSpan._next[0] += 1
        self.name = name
        self.cat = "span"
        self.parent = parent.id if parent is not None else None
        self.start = start
        self.end = end
        self.args = args


class FakeTracer:
    def __init__(self, spans=(), events=(), dropped=0):
        self.spans = list(spans)
        self.events = list(events)
        self.dropped = dropped


def task(name, start, end, run="wf#1", site="a", vm="a-0"):
    return FakeSpan(
        "task", start, end, task=name, run=run, site=site, vm=vm
    )


class TestConcurrencyProfile:
    def test_sweep_line(self):
        series, peak, mean, busy = concurrency_profile(
            [(0.0, 4.0), (2.0, 6.0), (8.0, 10.0)], (0.0, 10.0)
        )
        assert peak == 2
        assert busy == pytest.approx(8.0)  # [0,6) + [8,10)
        assert mean == pytest.approx(1.0)  # 10 unit-seconds over 10s
        assert series[0] == (0.0, 1)
        assert series[-1] == (10.0, 0)

    def test_intervals_clamped_to_window(self):
        _, peak, mean, busy = concurrency_profile(
            [(-5.0, 15.0)], (0.0, 10.0)
        )
        assert peak == 1
        assert busy == pytest.approx(10.0)
        assert mean == pytest.approx(1.0)

    def test_empty_input_sentinel(self):
        assert concurrency_profile([], (0.0, 10.0)) == ([], 0, 0.0, 0.0)

    def test_zero_window_sentinel(self):
        assert concurrency_profile([(0.0, 1.0)], (3.0, 3.0)) == (
            [], 0, 0.0, 0.0,
        )


class TestCriticalPath:
    def test_picks_latest_finishing_predecessor_chain(self):
        a = task("a", 0.0, 2.0)
        b = task("b", 0.0, 5.0)  # the slow branch
        c = task("c", 5.5, 8.0)  # starts after both
        path = _critical_path([a, b, c])
        assert [s.args["task"] for s in path] == ["b", "c"]

    def test_overlapping_spans_never_chain(self):
        a = task("a", 0.0, 6.0)
        b = task("b", 4.0, 9.0)  # overlaps a: not a's successor
        path = _critical_path([a, b])
        assert [s.args["task"] for s in path] == ["b"]

    def test_deterministic_tie_break(self):
        a = task("a", 0.0, 3.0)
        b = task("b", 0.0, 3.0)  # same window; higher id wins
        c = task("c", 3.0, 4.0)
        path = _critical_path([a, b, c])
        assert [s.args["task"] for s in path] == ["b", "c"]


class TestAnalyzeTracer:
    def test_empty_tracer_sentinel(self):
        analysis = analyze_tracer(FakeTracer())
        assert isinstance(analysis, RunAnalysis)
        assert analysis.workflows == []
        assert analysis.sites == {}
        assert analysis.hottest_site() is None
        assert analysis.hottest_link() is None
        assert analysis.window == (0.0, 0.0)
        assert analysis.complete

    def test_buckets_partition_hand_built_trace(self):
        t1 = task("one", 1.0, 4.0)
        compute = FakeSpan("compute", 1.5, 3.5, parent=t1)
        t2 = task("two", 5.0, 8.0)  # 1s dependency gap after t1
        stage = FakeSpan(
            "stage", 5.0, 6.0, parent=t2, metadata_s=0.25, transfer_s=0.75
        )
        events = [
            (0.0, "workload", "submit", {"run": "wf#1", "tenant": "t"}),
            (0.5, "workload", "admit", {"run": "wf#1", "wait": 0.5}),
        ]
        analysis = analyze_tracer(
            FakeTracer([t1, compute, t2, stage], events)
        )
        (wf,) = analysis.workflows
        assert wf.window_start == 0.0  # the submit time, not task start
        assert wf.makespan == pytest.approx(8.0)
        b = wf.buckets
        assert b["admission_wait"] == pytest.approx(0.5)
        # 0.5s gap submit->start beyond admission, plus 1s between tasks
        assert b["dependency_wait"] == pytest.approx(1.5)
        assert b["compute"] == pytest.approx(2.0)
        assert b["metadata"] == pytest.approx(0.25)
        assert b["wan_transfer"] == pytest.approx(0.75)
        # overhead absorbs the un-childed residual of both task spans
        assert b["overhead"] == pytest.approx(3.0)
        assert sum(b.values()) == pytest.approx(wf.makespan, abs=1e-12)
        assert wf.dominant_bucket() == "overhead"

    def test_utilization_and_registry_extraction(self):
        t1 = task("one", 0.0, 4.0, site="a", vm="a-0")
        t2 = task("two", 2.0, 6.0, site="a", vm="a-1")
        xfer = FakeSpan(
            "transfer", 1.0, 3.0, src="a", dst="b", size=100.0
        )
        local = FakeSpan(  # same-site: never a WAN link
            "transfer", 1.0, 2.0, src="a", dst="a", size=5.0
        )
        events = [
            (0.5, "registry", "slot_wait", {"site": "a", "wait": 0.2}),
            (1.5, "registry", "slot_wait", {"site": "a", "wait": 0.3}),
        ]
        analysis = analyze_tracer(
            FakeTracer([t1, t2, xfer, local], events)
        )
        site = analysis.sites["a"]
        assert site.peak == 2
        assert site.vms_seen == 2
        assert site.busy_s == pytest.approx(6.0)
        assert analysis.hottest_site() == "a"
        assert set(analysis.links) == {"a->b"}
        assert analysis.links["a->b"].bytes == pytest.approx(100.0)
        assert analysis.hottest_link() == "a->b"
        assert analysis.registry_wait["a"] == pytest.approx(
            {"total_s": 0.5, "count": 2, "max_s": 0.3}
        )

    def test_dropped_events_flagged_incomplete(self):
        analysis = analyze_tracer(FakeTracer(dropped=3))
        assert not analysis.complete
        assert analysis.to_dict()["complete"] is False

    def test_to_dict_is_json_ready(self):
        import json

        t1 = task("one", 0.0, 2.0)
        doc = analyze_tracer(FakeTracer([t1])).to_dict()
        again = json.loads(json.dumps(doc))
        assert again["buckets"].keys() == set(ATTRIBUTION_BUCKETS)
        assert again["workflows"][0]["n_tasks"] == 1


def traced(name, **over):
    spec = get_scenario(name).replace(
        observability=ObservabilitySpec(enabled=True), **over
    )
    return spec.run(quick=True)


class TestIntegration:
    def test_workflow_buckets_sum_to_observed_makespan(self):
        result = traced("fanout_bandwidth_aware")
        analysis = result.analysis
        assert analysis is not None and analysis.complete
        (wf,) = analysis.workflows
        # The acceptance bar is 1%; the partition is exact by design.
        assert sum(wf.buckets.values()) == pytest.approx(
            wf.makespan, rel=1e-6
        )
        assert wf.makespan == pytest.approx(result.makespan, rel=1e-6)
        assert wf.path, "critical path must be non-empty"

    def test_multi_tenant_buckets_sum_per_workflow(self):
        result = traced("multi_tenant_8")
        analysis = result.analysis
        assert len(analysis.workflows) == 8
        for wf in analysis.workflows:
            assert sum(wf.buckets.values()) == pytest.approx(
                wf.makespan, rel=1e-6
            )
        # Tenants queue behind max_in_flight=4: admission must show up.
        assert analysis.buckets["admission_wait"] > 0

    def test_analysis_is_a_pure_consumer(self):
        """Traced+analyzed and untraced runs agree bit-for-bit."""
        spec = get_scenario("fanout_bandwidth_aware")
        plain = spec.run(quick=True)
        analyzed = traced("fanout_bandwidth_aware")
        assert plain.analysis is None and analyzed.analysis is not None
        assert result_metrics(plain) == result_metrics(analyzed)

    def test_analysis_deterministic_across_runs(self):
        a = traced("fanout_bandwidth_aware").analysis.to_dict()
        b = traced("fanout_bandwidth_aware").analysis.to_dict()
        assert a == b

    def test_analysis_persists_through_artifact(self, tmp_path):
        from repro.results import ResultStore

        store = ResultStore(tmp_path)
        path = store.save(traced("fanout_bandwidth_aware"))
        doc = store.load(path)
        assert doc["analysis"]["hottest_site"]
        assert doc["analysis"]["workflows"][0]["path"]
        assert sum(doc["analysis"]["buckets"].values()) == pytest.approx(
            doc["metrics"]["makespan_s"], rel=1e-6
        )


class TestCapacityTimeline:
    def test_builds_per_site_placeable_steps(self):
        from repro.obs import capacity_timeline

        tracer = FakeTracer(events=[
            (0.0, "elastic", "fleet", {"site": "a", "vms": 1}),
            (0.0, "elastic", "fleet", {"site": "b", "vms": 1}),
            # Orders carry no 'vms' (nothing placeable changed yet).
            (5.0, "elastic", "scale_up", {"site": "a", "delta": 2,
                                          "lag_s": 3.0}),
            (8.0, "elastic", "vm_provisioned", {"site": "a", "delta": 2,
                                                "vms": 3}),
            (20.0, "elastic", "scale_down", {"site": "a", "delta": -1,
                                             "vms": 2}),
            # Retirement closes the ledger, not the placeable count.
            (25.0, "elastic", "vm_decommissioned", {"site": "a",
                                                    "vm": "worker-4"}),
            # Other categories never leak in.
            (9.0, "workload", "submit", {"vms": 99, "site": "a"}),
        ])
        timeline = capacity_timeline(tracer)
        assert timeline == {
            "a": [(0.0, 1), (8.0, 3), (20.0, 2)],
            "b": [(0.0, 1)],
        }

    def test_empty_tracer_yields_empty_timeline(self):
        from repro.obs import capacity_timeline

        assert capacity_timeline(FakeTracer()) == {}

    def test_live_elastic_run_timeline_matches_fleet_report(self):
        from repro.obs import capacity_timeline

        res = get_scenario("autoscale_ramp").run(quick=True)
        timeline = capacity_timeline(res.tracer)
        assert set(timeline)  # at least one site stepped
        # Per-site series are time-ordered and start at the baseline.
        for series in timeline.values():
            assert series == sorted(series)
            assert series[0][1] == 1  # 4 nodes over 4 sites
        # The max of summed site capacity at provision steps equals
        # the report's fleet peak.
        peaks = {
            site: max(v for _, v in series)
            for site, series in timeline.items()
        }
        assert sum(peaks.values()) >= res.elastic.fleet_peak
