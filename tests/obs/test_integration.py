"""End-to-end observability: tracing must observe, never perturb.

The two load-bearing contracts:

- a traced run produces bit-for-bit the same scenario metrics as the
  identical untraced run (the tracer consumes no RNG and schedules no
  events);
- the exporters emit valid Chrome trace-event JSON with every
  instrumented layer represented, and the streaming sketches agree
  with the exact ``OpStats`` percentiles.
"""

import json

import numpy as np
import pytest

from repro.obs import chrome_trace_doc, events_jsonl, write_chrome_trace
from repro.results import diff_artifacts, scenario_result_to_dict
from repro.scenario import ObservabilitySpec, ScenarioSpec, get_scenario


def small_workflow_spec(**obs_knobs):
    spec = ScenarioSpec(
        name="obs-it",
        surface="workflow",
        application="montage",
        ops_per_task=6,
        n_nodes=8,
        seed=3,
    )
    if obs_knobs:
        spec = spec.replace(
            observability=ObservabilitySpec(enabled=True, **obs_knobs)
        )
    return spec


class TestTracingIsInvisible:
    def test_traced_run_bit_identical_to_untraced(self):
        base = small_workflow_spec().run()
        traced = small_workflow_spec(categories=None).run()
        doc_base = scenario_result_to_dict(base)
        doc_traced = scenario_result_to_dict(traced)
        doc_traced.pop("obs", None)
        # Same metrics, same provenance -- including the processed-event
        # count: the tracer never schedules simulation events.
        assert doc_base["metrics"] == doc_traced["metrics"]
        assert doc_base["provenance"] == doc_traced["provenance"]

    def test_spec_hash_unaffected_by_observability(self):
        assert (
            small_workflow_spec().spec_hash()
            == small_workflow_spec(sample_interval=0.25).spec_hash()
        )


class TestScenarioTraceExport:
    @pytest.fixture(scope="class")
    def traced(self):
        spec = get_scenario("fanout_bandwidth_aware").replace(
            observability=ObservabilitySpec(enabled=True)
        )
        return spec.run(quick=True)

    def test_all_instrumented_layers_emit(self, traced):
        counts = traced.obs["events"]
        for cat in ("kernel", "network", "registry", "scheduler", "span"):
            assert counts.get(cat, 0) > 0, f"no {cat} events"

    def test_chrome_trace_doc_valid(self, traced, tmp_path):
        doc = chrome_trace_doc(traced.tracer)
        assert doc["displayTimeUnit"] == "ms"
        events = doc["traceEvents"]
        assert events
        cats = {e.get("cat") for e in events}
        assert {"kernel", "network", "scheduler", "span"} <= cats
        for e in events:
            if e["ph"] == "X":
                assert e["dur"] >= 0
                assert e["ts"] >= 0
        # Round-trips through the JSON writer.
        out = tmp_path / "trace.json"
        write_chrome_trace(traced.tracer, out)
        assert json.loads(out.read_text())["traceEvents"]

    def test_jsonl_stream_sorted_and_typed(self, traced):
        records = [json.loads(line) for line in events_jsonl(traced.tracer)]
        assert records
        ts = [r["ts"] for r in records]
        assert ts == sorted(ts)
        spans = [r for r in records if r.get("ph") == "span"]
        assert spans and all("dur" in r for r in spans)

    def test_scheduler_events_carry_candidate_scores(self, traced):
        places = [
            args
            for _, cat, name, args in traced.tracer.events
            if cat == "scheduler" and name == "place"
        ]
        assert places
        for args in places:
            assert args["site"] in args["scores"]
            assert all(v >= 0 for v in args["scores"].values())

    def test_task_spans_have_phase_children(self, traced):
        spans = traced.tracer.spans
        tasks = {s.id: s for s in spans if s.name == "task"}
        assert tasks
        children = [s for s in spans if s.parent in tasks]
        assert {s.name for s in children} >= {"stage", "publish"}
        for s in spans:
            assert s.end is not None and s.end >= s.start


class TestSketchAccuracy:
    def test_ops_histogram_matches_exact_percentiles(self):
        result = small_workflow_spec(categories=("registry",)).run()
        ops = result.result.ops
        hist = result.obs["metrics"]["histograms"]["ops.latency_s"]
        assert hist["count"] == len(ops.records)
        # Stream fits the reservoir -> quantiles are exact.
        assert hist["count"] <= 2048
        latencies = [r.latency for r in ops.records]
        for q, key in ((50, "p50"), (90, "p90"), (99, "p99")):
            assert hist[key] == pytest.approx(
                float(np.percentile(latencies, q)), abs=1e-9
            )
            assert hist[key] == pytest.approx(
                ops.latency_percentile(q), abs=1e-9
            )


class TestProvenanceSurface:
    def test_artifact_carries_provenance(self):
        result = small_workflow_spec().run()
        doc = scenario_result_to_dict(result)
        prov = doc["provenance"]
        assert prov["queue_backend"] in ("heap", "bucket")
        assert prov["flow_solver"] in (
            "slots", "fair/full", "fair/incremental",
        )
        assert prov["events_processed"] > 0
        assert "obs" not in doc  # untraced runs stay lean

    def test_diff_surfaces_provenance_changes(self):
        result = small_workflow_spec().run()
        doc_a = scenario_result_to_dict(result)
        doc_b = json.loads(json.dumps(doc_a))
        doc_b["provenance"]["queue_backend"] = "bucket-test"
        diff = diff_artifacts(doc_a, doc_b)
        assert diff.provenance == {
            "queue_backend": (
                doc_a["provenance"]["queue_backend"],
                "bucket-test",
            )
        }
        assert "provenance" in diff.render()
        # Old artifacts without the key still diff cleanly.
        doc_b.pop("provenance")
        legacy = diff_artifacts(doc_a, doc_b)
        assert all(b is None for _, b in legacy.provenance.values())
