"""Unit tests for the tracer core: events, spans, the null fast path."""

import pytest

from repro.obs import NULL_TRACER, TRACE_CATEGORIES, Tracer
from repro.obs.trace import NULL_SPAN
from repro.sim import Environment, Timeout


def make_env(now=0.0):
    env = Environment()
    if now:
        env.run(until=now)
    return env


class TestNullTracer:
    def test_is_inert(self):
        assert NULL_TRACER.enabled is False
        assert all(not NULL_TRACER.wants(c) for c in TRACE_CATEGORIES)
        NULL_TRACER.emit("kernel", "pop", t=1.0)  # no-op, no error
        assert NULL_TRACER.export() == {}

    def test_null_span_chain(self):
        sp = NULL_TRACER.span("task", vm="vm-0")
        assert sp is NULL_SPAN
        assert sp.child("stage") is NULL_SPAN
        with sp:
            sp.finish(extra=1)  # all no-ops

    def test_fresh_environment_has_no_tracer(self):
        env = Environment()
        assert env.tracer is None
        assert env._trace_kernel is False


class TestTracer:
    def test_unknown_category_rejected(self):
        with pytest.raises(ValueError, match="unknown trace categories"):
            Tracer(make_env(), categories=("kernel", "nope"))

    def test_category_filtering(self):
        tracer = Tracer(make_env(), categories=("network",))
        assert tracer.wants("network")
        assert not tracer.wants("kernel")
        tracer.emit("kernel", "pop")
        tracer.emit("network", "transfer_open", src="a", dst="b")
        assert tracer.counts == {"network": 1}
        assert len(tracer.events) == 1
        assert tracer.span("task") is NULL_SPAN  # "span" not enabled

    def test_events_stamped_with_sim_time(self):
        env = make_env()
        tracer = Tracer(env)
        env.attach_tracer(tracer)
        tracer.emit("workload", "submit", tenant="t0")
        Timeout(env, 2.5)
        env.run()
        tracer.emit("workload", "complete", tenant="t0")
        workload = [
            (t, name)
            for t, cat, name, _ in tracer.events
            if cat == "workload"
        ]
        assert workload == [(0.0, "submit"), (2.5, "complete")]

    def test_span_parentage_and_finish(self):
        env = make_env()
        tracer = Tracer(env)
        root = tracer.span("task", task="t1")
        child = root.child("stage", inputs=2)
        by_id = tracer.span("rpc", parent=root.id)
        assert child.parent == root.id
        assert by_id.parent == root.id
        assert root.parent is None
        Timeout(env, 1.0)
        env.run()
        child.finish(transferred=3)
        assert child.end == 1.0
        assert child.args["transferred"] == 3
        Timeout(env, 1.0)
        env.run()
        child.finish()  # idempotent: end does not move
        assert child.end == 1.0
        with tracer.span("ctx") as sp:
            pass
        assert sp.end == 2.0

    def test_max_events_budget_counts_drops(self):
        tracer = Tracer(make_env(), max_events=3)
        for i in range(5):
            tracer.emit("kernel", "pop", t=float(i))
        assert len(tracer.events) == 3
        assert tracer.dropped == 2
        assert tracer.counts["kernel"] == 5  # counts are never capped

    def test_attach_tracer_caches_kernel_flag(self):
        env = Environment()
        tracer = Tracer(env, categories=("kernel",))
        env.attach_tracer(tracer)
        assert env.tracer is tracer
        assert env._trace_kernel is True
        env2 = Environment()
        env2.attach_tracer(Tracer(env2, categories=("network",)))
        assert env2._trace_kernel is False

    def test_kernel_events_from_instrumented_run(self):
        env = Environment()
        env.attach_tracer(Tracer(env))
        Timeout(env, 1.0)
        Timeout(env, 2.0)
        env.run()
        names = {name for _, _, name, _ in env.tracer.events}
        assert "schedule" in names
        assert "pop" in names
        assert env.events_processed == 2

    def test_export_summary(self):
        env = make_env()
        tracer = Tracer(env)
        tracer.emit("kernel", "pop")
        tracer.span("task").finish()
        tracer.metrics.counter("c").inc()
        doc = tracer.export()
        assert doc["events"] == {"kernel": 1, "span": 1}
        assert doc["n_events"] == 1
        assert doc["n_spans"] == 1
        assert doc["dropped"] == 0
        assert doc["metrics"]["counters"] == {"c": 1.0}

    def test_tracer_never_schedules_events(self):
        env = Environment()
        env.attach_tracer(Tracer(env))
        env.tracer.emit("workload", "submit")
        env.tracer.span("task")
        assert env.queued == 0
