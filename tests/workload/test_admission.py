"""Admission-control tests: policies, knob threading and validation."""

import pytest

from repro.sim import Environment
from repro.cloud.deployment import Deployment
from repro.metadata.config import MetadataConfig
from repro.metadata.controller import ArchitectureController
from repro.workload import (
    ADMISSION_NAMES,
    MaxInFlightAdmission,
    TokenBucketAdmission,
    UnboundedAdmission,
    WorkloadRunner,
    make_admission,
)


def drive(env, gen):
    """Run one admission process to completion; returns (value, end_time)."""
    proc = env.process(gen)
    value = env.run(until=proc)
    return value, env.now


class TestPolicies:
    def test_unbounded_admits_immediately(self):
        env = Environment()
        adm = UnboundedAdmission(env)
        _, at = drive(env, adm.admit("t"))
        assert at == 0.0
        assert adm.bound is None
        assert adm.admitted == 1

    def test_max_in_flight_blocks_at_limit(self):
        env = Environment()
        adm = MaxInFlightAdmission(env, limit=2)
        t1, _ = drive(env, adm.admit("a"))
        t2, _ = drive(env, adm.admit("b"))
        assert adm.in_flight == 2

        # A third admit must wait until someone releases.
        def third():
            token = yield from adm.admit("c")
            return token

        proc = env.process(third())
        env.run(until=env.timeout(1.0))
        assert adm.in_flight == 2  # still blocked
        adm.release(t1)
        env.run(until=proc)
        assert adm.in_flight == 2
        adm.release(t2)
        assert adm.bound == 2

    def test_token_bucket_burst_then_pacing(self):
        env = Environment()
        adm = TokenBucketAdmission(env, rate=1.0, burst=2)
        _, t1 = drive(env, adm.admit("t"))
        _, t2 = drive(env, adm.admit("t"))
        _, t3 = drive(env, adm.admit("t"))
        _, t4 = drive(env, adm.admit("t"))
        assert (t1, t2) == (0.0, 0.0)  # burst of 2
        assert (t3, t4) == (1.0, 2.0)  # then 1/s pacing

    def test_token_bucket_tenants_independent(self):
        env = Environment()
        adm = TokenBucketAdmission(env, rate=1.0, burst=1)
        _, t1 = drive(env, adm.admit("a"))
        _, t2 = drive(env, adm.admit("b"))
        assert t1 == t2 == 0.0  # b's bucket is untouched by a

    def test_token_bucket_refills_while_idle(self):
        env = Environment()
        adm = TokenBucketAdmission(env, rate=2.0, burst=1)
        drive(env, adm.admit("t"))
        env.run(until=env.timeout(5.0))  # plenty of idle refill
        _, at = drive(env, adm.admit("t"))
        assert at == 5.0  # no residual debt

    @pytest.mark.parametrize(
        "factory",
        [
            lambda env: MaxInFlightAdmission(env, limit=0),
            lambda env: TokenBucketAdmission(env, rate=0.0),
            lambda env: TokenBucketAdmission(env, rate=1.0, burst=0),
        ],
    )
    def test_bad_knobs_rejected(self, factory):
        with pytest.raises(ValueError):
            factory(Environment())

    def test_make_admission_unknown_name(self):
        with pytest.raises(ValueError, match="unknown admission"):
            make_admission("nope", Environment())

    def test_registry_names_stable(self):
        assert ADMISSION_NAMES == (
            "unbounded",
            "max_in_flight",
            "token_bucket",
        )


class TestThreading:
    def test_runner_default_is_unbounded(self):
        dep = Deployment(n_nodes=4, seed=0)
        ctrl = ArchitectureController(dep, strategy="hybrid")
        runner = WorkloadRunner(dep, ctrl.strategy)
        assert runner.admission.name == "unbounded"
        ctrl.shutdown()

    def test_config_admission_with_knobs_wins(self):
        dep = Deployment(n_nodes=4, seed=0)
        cfg = MetadataConfig(admission="max_in_flight", max_in_flight=3)
        ctrl = ArchitectureController(dep, strategy="hybrid", config=cfg)
        runner = WorkloadRunner(dep, ctrl.strategy)
        assert runner.admission.name == "max_in_flight"
        assert runner.admission.bound == 3
        ctrl.shutdown()

    def test_deployment_default_used_when_config_silent(self):
        dep = Deployment(n_nodes=4, seed=0, admission="token_bucket")
        ctrl = ArchitectureController(dep, strategy="hybrid")
        runner = WorkloadRunner(dep, ctrl.strategy)
        assert runner.admission.name == "token_bucket"
        ctrl.shutdown()

    def test_explicit_argument_wins_over_config(self):
        dep = Deployment(n_nodes=4, seed=0)
        cfg = MetadataConfig(admission="token_bucket", token_rate=2.0)
        ctrl = ArchitectureController(dep, strategy="hybrid", config=cfg)
        runner = WorkloadRunner(dep, ctrl.strategy, admission="unbounded")
        assert runner.admission.name == "unbounded"
        ctrl.shutdown()

    def test_deployment_rejects_unknown_admission(self):
        with pytest.raises(ValueError, match="unknown admission"):
            Deployment(n_nodes=4, admission="nope")


class TestConfigValidation:
    def test_from_workload_args_roundtrip(self):
        cfg = MetadataConfig.from_workload_args(
            "token_bucket", token_rate=2.0, token_burst=3
        )
        assert cfg.admission == "token_bucket"
        assert cfg.token_rate == 2.0
        assert cfg.token_burst == 3

    def test_no_knobs_returns_base(self):
        base = MetadataConfig()
        assert MetadataConfig.from_workload_args(None, base=base) is base
        assert MetadataConfig.from_workload_args(None) is None

    def test_max_in_flight_requires_policy(self):
        with pytest.raises(ValueError, match="max_in_flight"):
            MetadataConfig.from_workload_args(None, max_in_flight=2)
        with pytest.raises(ValueError, match="max_in_flight"):
            MetadataConfig.from_workload_args("unbounded", max_in_flight=2)

    def test_token_knobs_require_policy(self):
        with pytest.raises(ValueError, match="token_bucket"):
            MetadataConfig.from_workload_args("unbounded", token_rate=1.0)
        with pytest.raises(ValueError, match="token_bucket"):
            MetadataConfig.from_workload_args(
                "max_in_flight", token_burst=2
            )

    def test_validate_rejects_bad_values(self):
        with pytest.raises(ValueError, match="admission"):
            MetadataConfig(admission="nope").validate()
        with pytest.raises(ValueError, match="max_in_flight"):
            MetadataConfig(max_in_flight=0).validate()
        with pytest.raises(ValueError, match="token_rate"):
            MetadataConfig(token_rate=-1.0).validate()
        with pytest.raises(ValueError, match="token_burst"):
            MetadataConfig(token_burst=0).validate()
