"""Workload spec/generator tests: validation, namespacing, determinism."""

import pytest

from repro.cloud.deployment import Deployment
from repro.metadata.controller import ArchitectureController
from repro.workload import (
    TenantSpec,
    WorkloadRunner,
    WorkloadSpec,
    arrival_offsets,
    generate_instances,
)
from repro.util.rng import RngStreams


def two_tenant_spec(**kw):
    defaults = dict(
        tenants=(
            TenantSpec(
                name="alice", application="scatter", n_instances=2,
                ops_per_task=4, compute_time=0.2,
            ),
            TenantSpec(
                name="bob", application="pipeline", n_instances=2,
                ops_per_task=4, compute_time=0.2,
            ),
        ),
        mode="closed",
        seed=3,
    )
    defaults.update(kw)
    return WorkloadSpec(**defaults)


class TestSpecValidation:
    def test_unknown_application_rejected(self):
        with pytest.raises(ValueError, match="unknown application"):
            TenantSpec(name="t", application="nope").validate()

    def test_duplicate_tenant_names_rejected(self):
        spec = WorkloadSpec(
            tenants=(TenantSpec(name="t"), TenantSpec(name="t")),
        )
        with pytest.raises(ValueError, match="duplicate tenant names"):
            spec.validate()

    def test_closed_loop_rejects_arrival_knobs(self):
        spec = WorkloadSpec(
            tenants=(TenantSpec(name="t", arrival_rate=1.0),),
            mode="closed",
        )
        with pytest.raises(ValueError, match="open-loop knobs"):
            spec.validate()

    def test_open_loop_requires_arrivals(self):
        spec = WorkloadSpec(tenants=(TenantSpec(name="t"),), mode="open")
        with pytest.raises(ValueError, match="need an arrival_rate"):
            spec.validate()

    def test_open_loop_rejects_think_time(self):
        spec = WorkloadSpec(
            tenants=(
                TenantSpec(name="t", arrival_rate=1.0, think_time=2.0),
            ),
            mode="open",
        )
        with pytest.raises(ValueError, match="closed-loop knob"):
            spec.validate()

    def test_bad_mode_rejected(self):
        with pytest.raises(ValueError, match="mode"):
            WorkloadSpec(tenants=(TenantSpec(name="t"),), mode="x").validate()

    def test_uniform_round_robins_applications(self):
        spec = WorkloadSpec.uniform(
            4, applications=("scatter", "pipeline")
        )
        apps = [t.application for t in spec.tenants]
        assert apps == ["scatter", "pipeline", "scatter", "pipeline"]


class TestNamespacing:
    def test_instances_have_disjoint_keys(self):
        plan = generate_instances(two_tenant_spec())
        a0, a1 = plan["alice"]
        keys = lambda wf: (
            set(wf.tasks)
            | {f.name for t in wf for f in t.inputs}
            | {f.name for t in wf for f in t.outputs}
        )
        assert keys(a0.workflow) & keys(a1.workflow) == set()
        assert all(k.startswith("alice/0/") for k in keys(a0.workflow))

    def test_namespacing_preserves_structure(self):
        plan = generate_instances(two_tenant_spec())
        inst = plan["bob"][0]
        from repro.workload import APPLICATIONS

        original = APPLICATIONS["pipeline"](
            two_tenant_spec().tenants[1]
        )
        assert len(inst.workflow) == len(original)
        assert (
            inst.workflow.critical_path_time()
            == original.critical_path_time()
        )
        assert (
            inst.workflow.total_metadata_ops
            == original.total_metadata_ops
        )

    def test_namespace_prefix_required(self):
        from repro.workflow.patterns import scatter

        with pytest.raises(ValueError, match="prefix"):
            scatter(2).namespaced("")


class TestArrivalDeterminism:
    def test_closed_loop_offsets_are_none(self):
        t = TenantSpec(name="t", n_instances=3)
        rng = RngStreams(seed=0).get("workload/t")
        assert arrival_offsets(t, "closed", rng) == [None, None, None]

    def test_poisson_offsets_deterministic_and_increasing(self):
        t = TenantSpec(name="t", n_instances=16, arrival_rate=2.0)
        a = arrival_offsets(t, "open", RngStreams(seed=5).get("workload/t"))
        b = arrival_offsets(t, "open", RngStreams(seed=5).get("workload/t"))
        assert a == b
        assert all(x < y for x, y in zip(a, a[1:]))
        c = arrival_offsets(t, "open", RngStreams(seed=6).get("workload/t"))
        assert a != c

    def test_trace_overrides_rate(self):
        t = TenantSpec(
            name="t", arrival_rate=1.0, arrival_times=(3.0, 1.0, 2.0)
        )
        rng = RngStreams(seed=0).get("workload/t")
        assert arrival_offsets(t, "open", rng) == [1.0, 2.0, 3.0]

    def test_per_tenant_streams_independent(self):
        """Adding a tenant never shifts another tenant's arrivals."""
        base = WorkloadSpec(
            tenants=(
                TenantSpec(name="a", arrival_rate=1.0, n_instances=4),
            ),
            mode="open",
            seed=11,
        )
        grown = WorkloadSpec(
            tenants=base.tenants
            + (TenantSpec(name="b", arrival_rate=1.0, n_instances=4),),
            mode="open",
            seed=11,
        )
        assert [
            i.arrival_offset for i in generate_instances(base)["a"]
        ] == [i.arrival_offset for i in generate_instances(grown)["a"]]


class TestWorkloadDeterminism:
    """Satellite: spec + seed pin the whole WorkloadResult bit-for-bit."""

    @staticmethod
    def _run(spec):
        dep = Deployment(n_nodes=8, seed=2)
        ctrl = ArchitectureController(dep, strategy="hybrid")
        res = WorkloadRunner(dep, ctrl.strategy).run(spec)
        ctrl.shutdown()
        return res

    def test_identical_spec_and_seed_identical_results(self):
        spec = two_tenant_spec(
            mode="open",
            tenants=(
                TenantSpec(
                    name="alice", application="scatter", n_instances=2,
                    ops_per_task=4, compute_time=0.2, arrival_rate=2.0,
                ),
                TenantSpec(
                    name="bob", application="pipeline", n_instances=2,
                    ops_per_task=4, compute_time=0.2, arrival_rate=1.0,
                ),
            ),
        )
        a, b = self._run(spec), self._run(spec)
        assert [r.application for r in a.records] == [
            r.application for r in b.records
        ]
        assert [r.submitted_at for r in a.records] == [
            r.submitted_at for r in b.records
        ]
        assert [r.queue_wait for r in a.records] == [
            r.queue_wait for r in b.records
        ]
        assert a.makespan == b.makespan
        assert a.slowdowns() == b.slowdowns()
        assert a.jain_fairness() == b.jain_fairness()
        assert a.total_ops == b.total_ops
        assert a.wan_bytes == b.wan_bytes
