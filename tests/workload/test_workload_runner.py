"""Workload-runner properties: completion, attribution, shared state."""

import pytest

from repro.cloud.deployment import Deployment
from repro.metadata.controller import ArchitectureController
from repro.workload import (
    MaxInFlightAdmission,
    TenantSpec,
    WorkloadRunner,
    WorkloadSpec,
    jain_index,
)


def run_workload(
    spec,
    strategy="hybrid",
    scheduler=None,
    admission=None,
    n_nodes=12,
    seed=2,
):
    dep = Deployment(n_nodes=n_nodes, seed=seed)
    ctrl = ArchitectureController(dep, strategy=strategy)
    runner = WorkloadRunner(
        dep, ctrl.strategy, scheduler=scheduler, admission=admission
    )
    res = runner.run(spec)
    ctrl.shutdown()
    return res, runner


class TestAcceptanceProperties:
    """The subsystem's acceptance criteria, at fast-test scale."""

    @pytest.mark.parametrize("strategy", ["centralized", "hybrid"])
    def test_all_tenants_complete_and_ops_conserve(self, strategy):
        spec = WorkloadSpec.uniform(
            8,
            applications=("scatter", "pipeline"),
            n_instances=1,
            ops_per_task=4,
            compute_time=0.2,
            seed=7,
        )
        res, _ = run_workload(spec, strategy=strategy)
        # Every tenant's workflow completes.
        assert res.n_completed == 8
        assert len(res.tenants()) == 8
        # Per-workflow op counts sum to the strategy's global count:
        # no lost or double-attributed ops.
        assert res.attributed_ops() == res.total_ops
        assert all(
            len(r.result.ops.records) > 0 for r in res.records
        )

    def test_per_workflow_ops_match_dag_op_counts(self):
        spec = WorkloadSpec.uniform(
            4,
            applications=("scatter",),
            n_instances=1,
            ops_per_task=6,
            compute_time=0.1,
            seed=3,
        )
        res, runner = run_workload(spec)
        from repro.workload.generators import generate_instances

        plan = generate_instances(spec)
        for record in res.records:
            tenant, idx = record.run.split("/")
            wf = plan[tenant][int(idx)].workflow
            assert len(record.result.ops.records) == wf.total_metadata_ops

    def test_closed_loop_max_in_flight_never_exceeds_bound(self):
        spec = WorkloadSpec.uniform(
            8,
            applications=("scatter", "pipeline"),
            n_instances=2,
            ops_per_task=4,
            compute_time=0.2,
            seed=5,
        )
        dep = Deployment(n_nodes=12, seed=2)
        ctrl = ArchitectureController(dep, strategy="decentralized")
        runner = WorkloadRunner(
            dep,
            ctrl.strategy,
            admission=MaxInFlightAdmission(dep.env, limit=3),
        )
        res = runner.run(spec)
        ctrl.shutdown()
        assert res.admission_bound == 3
        assert 0 < res.peak_in_flight <= 3
        assert res.n_completed == 16
        # Admission produced real queueing under 8 tenants / 3 slots.
        assert res.mean_queue_wait() > 0

    def test_sequential_specs_on_one_runner_stay_conserved(self):
        """Regression: a second run() must not reuse the first epoch's
        run tags or file keys -- op attribution stays exact per spec."""
        spec = WorkloadSpec.uniform(
            3,
            applications=("scatter",),
            ops_per_task=4,
            compute_time=0.1,
            seed=6,
        )
        dep = Deployment(n_nodes=8, seed=2)
        ctrl = ArchitectureController(dep, strategy="hybrid")
        runner = WorkloadRunner(dep, ctrl.strategy)
        first = runner.run(spec)
        second = runner.run(spec)
        ctrl.shutdown()
        for res in (first, second):
            assert res.n_completed == 3
            assert res.attributed_ops() == res.total_ops
        # Distinct epochs, distinct tags, no cross-talk.
        assert {r.run for r in first.records}.isdisjoint(
            r.run for r in second.records
        )
        assert all(r.run.startswith("r2/") for r in second.records)
        # The second epoch's work is real (fresh keys, not cache hits):
        # it issues exactly as many ops as the first.
        assert second.total_ops == first.total_ops

    def test_unbounded_exceeds_tight_bound_peak(self):
        spec = WorkloadSpec.uniform(
            6,
            applications=("scatter",),
            ops_per_task=4,
            compute_time=0.3,
            seed=5,
        )
        free, _ = run_workload(spec, admission="unbounded")
        assert free.peak_in_flight == 6  # closed loop: all tenants at once
        assert free.mean_queue_wait() == 0.0


class TestSharedState:
    def test_concurrent_same_app_instances_do_not_collide(self):
        """Two montage-small instances share no file keys at any site."""
        spec = WorkloadSpec(
            tenants=(
                TenantSpec(
                    name="a", application="montage-small",
                    ops_per_task=4, compute_time=0.1,
                ),
                TenantSpec(
                    name="b", application="montage-small",
                    ops_per_task=4, compute_time=0.1,
                ),
            ),
            seed=1,
        )
        res, runner = run_workload(spec)
        assert res.n_completed == 2
        stored = [
            f.name
            for store in runner.engine.transfer.stores.values()
            for f in store
        ]
        a_keys = {n for n in stored if n.startswith("a/0/")}
        b_keys = {n for n in stored if n.startswith("b/0/")}
        assert a_keys and b_keys
        assert not (a_keys & b_keys)
        assert set(stored) == a_keys | b_keys  # nothing unprefixed

    def test_single_shared_policy_instance_and_clean_ledger(self):
        """One policy serves every tenant; its ledger drains to empty."""
        spec = WorkloadSpec.uniform(
            4,
            applications=("scatter", "montage-small"),
            ops_per_task=4,
            compute_time=0.1,
            seed=9,
        )
        dep = Deployment(n_nodes=12, seed=2)
        ctrl = ArchitectureController(dep, strategy="hybrid")
        runner = WorkloadRunner(
            dep, ctrl.strategy, scheduler="bandwidth_aware"
        )
        res = runner.run(spec)
        ctrl.shutdown()
        policy = runner.engine.policy
        assert res.n_completed == 4
        # Workflow-scoped hooks (claims keyed by namespaced task ids)
        # fully release the cluster-scoped pending-bytes ledger.
        assert policy._pending == {}
        assert policy._claims == {}
        # And the engine's load counters return to idle.
        assert all(v == 0 for v in runner.engine._vm_load.values())

    def test_queue_wait_accounting_serialized_tenants(self):
        """With one slot, tenant B waits out tenant A's makespan."""
        spec = WorkloadSpec.uniform(
            2,
            applications=("scatter",),
            ops_per_task=4,
            compute_time=0.2,
            seed=4,
        )
        dep = Deployment(n_nodes=8, seed=2)
        ctrl = ArchitectureController(dep, strategy="hybrid")
        runner = WorkloadRunner(
            dep,
            ctrl.strategy,
            admission=MaxInFlightAdmission(dep.env, limit=1),
        )
        res = runner.run(spec)
        ctrl.shutdown()
        first, second = sorted(res.records, key=lambda r: r.admitted_at)
        assert first.queue_wait == 0.0
        assert second.queue_wait == pytest.approx(first.makespan)

    def test_per_tenant_input_sites_respected(self):
        dep = Deployment(n_nodes=8, seed=2)
        far = dep.sites[-1]
        spec = WorkloadSpec(
            tenants=(
                TenantSpec(
                    name="t", application="ingest", input_site=far,
                    ops_per_task=2, compute_time=0.1,
                ),
            ),
            seed=1,
        )
        ctrl = ArchitectureController(dep, strategy="hybrid")
        runner = WorkloadRunner(dep, ctrl.strategy)
        runner.run(spec)
        ctrl.shutdown()
        # The external seed was staged at the tenant's input site.
        assert runner.engine.transfer.stores[far].has("t/0/ingest/seed")


class TestMetrics:
    def test_jain_index_bounds(self):
        assert jain_index([]) == 1.0
        assert jain_index([0.0, 0.0]) == 1.0
        assert jain_index([2.0, 2.0, 2.0]) == pytest.approx(1.0)
        assert jain_index([1.0, 0.0, 0.0, 0.0]) == pytest.approx(0.25)
        assert 0.0 < jain_index([1.0, 2.0, 3.0]) < 1.0

    def test_slowdown_floor_is_one_for_best_instance(self):
        spec = WorkloadSpec.uniform(
            3,
            applications=("pipeline",),
            ops_per_task=4,
            compute_time=0.2,
            seed=8,
        )
        res, _ = run_workload(spec)
        # The fastest unqueued instance defines the baseline.
        assert min(res.slowdowns()) >= 1.0
        assert res.slowdown_percentile(0) >= 1.0

    def test_export_json_roundtrip(self, tmp_path):
        import json

        from repro.analysis.export import export_json

        spec = WorkloadSpec.uniform(
            2, applications=("scatter",), ops_per_task=2,
            compute_time=0.1, seed=1,
        )
        res, _ = run_workload(spec)
        out = tmp_path / "workload.json"
        export_json(res, out)
        doc = json.loads(out.read_text())
        assert doc["strategy"] == "hybrid"
        assert len(doc["instances"]) == 2
        assert doc["jain_fairness"] == pytest.approx(res.jain_fairness())
        assert doc["instances"][0]["result"]["tasks"]
