"""Tests for trace generation and workload characterization."""

import numpy as np
import pytest

from repro.util.units import KB, MB
from repro.workflow.applications import buzzflow, montage
from repro.workflow.patterns import broadcast, gather, pipeline, scatter
from repro.workflow.traces import (
    HUMAN_GENOME,
    SLOAN_SKY_SURVEY,
    TraceProfile,
    characterize,
    generate_trace_workflow,
)


class TestTraceProfile:
    def test_validation(self):
        with pytest.raises(ValueError):
            TraceProfile(median_file_size=0)
        with pytest.raises(ValueError):
            TraceProfile(pattern_mix=(0.5, 0.5))
        with pytest.raises(ValueError):
            TraceProfile(pattern_mix=(0.9, 0.2, 0.2))


class TestGeneration:
    def test_valid_dag(self):
        wf = generate_trace_workflow(HUMAN_GENOME, n_stages=5, stage_width=3)
        wf.validate()
        assert len(wf) >= 5

    def test_deterministic_by_seed(self):
        a = generate_trace_workflow(HUMAN_GENOME, seed=3)
        b = generate_trace_workflow(HUMAN_GENOME, seed=3)
        assert [t.task_id for t in a] == [t.task_id for t in b]
        assert [f.size for t in a for f in t.outputs] == [
            f.size for t in b for f in t.outputs
        ]

    def test_file_sizes_follow_median(self):
        wf = generate_trace_workflow(
            HUMAN_GENOME, n_stages=20, stage_width=8, seed=1
        )
        sizes = [f.size for t in wf for f in t.outputs]
        median = float(np.median(sizes))
        # Lognormal around 190 KB: the sample median lands nearby.
        assert 0.5 * HUMAN_GENOME.median_file_size < median
        assert median < 2.0 * HUMAN_GENOME.median_file_size

    def test_profiles_differ(self):
        genome = generate_trace_workflow(HUMAN_GENOME, seed=2, n_stages=10)
        sloan = generate_trace_workflow(SLOAN_SKY_SURVEY, seed=2, n_stages=10)
        g_sizes = np.median([f.size for t in genome for f in t.outputs])
        s_sizes = np.median([f.size for t in sloan for f in t.outputs])
        assert s_sizes > g_sizes  # Sloan images are bigger

    def test_validation(self):
        with pytest.raises(ValueError):
            generate_trace_workflow(HUMAN_GENOME, n_stages=0)


class TestCharacterize:
    def test_pipeline_detected(self):
        ch = characterize(pipeline(8))
        assert ch.dominant_pattern == "pipeline"

    def test_scatter_produces_broadcasty_consumers(self):
        # A scatter stage's workers each read a distinct split file ->
        # pipeline-ish consumers; the splitter itself is a scatter.
        ch = characterize(scatter(6))
        assert ch.pattern_counts["scatter"] >= 1

    def test_broadcast_detected(self):
        ch = characterize(broadcast(6))
        assert ch.pattern_counts["broadcast"] == 6

    def test_gather_detected(self):
        ch = characterize(gather(5))
        assert ch.pattern_counts["gather"] == 1

    def test_montage_mix(self):
        ch = characterize(montage(ops_per_task=100))
        # 156 projections each reading a distinct tile + 2 gathers + final.
        assert ch.pattern_counts["gather"] >= 2
        assert ch.n_tasks == 160
        assert ch.small_file_fraction == 1.0

    def test_metadata_intensity(self):
        assert characterize(montage(ops_per_task=1000)).is_metadata_intensive()
        assert not characterize(
            montage(ops_per_task=100)
        ).is_metadata_intensive()

    def test_read_write_ratio(self):
        ch = characterize(pipeline(4, extra_ops=0))
        # 3 reads (stage inputs) / 4 writes (stage outputs).
        assert ch.read_write_ratio == pytest.approx(0.75)

    def test_empty_rejected(self):
        from repro.workflow.dag import Workflow

        with pytest.raises(ValueError):
            characterize(Workflow("empty"))
