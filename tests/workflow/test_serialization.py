"""Tests for workflow JSON serialization."""

import json

import pytest

from repro.workflow.applications import montage
from repro.workflow.dag import Task, Workflow, WorkflowFile
from repro.workflow.patterns import gather, pipeline
from repro.workflow.serialization import (
    WorkflowFormatError,
    load_workflow,
    save_workflow,
    workflow_from_dict,
    workflow_to_dict,
)


class TestRoundTrip:
    @pytest.mark.parametrize(
        "wf",
        [
            pipeline(4, extra_ops=5),
            gather(6),
            montage(ops_per_task=100, n_parallel=12, n_merges=2),
        ],
        ids=["pipeline", "gather", "montage"],
    )
    def test_dict_roundtrip_preserves_structure(self, wf):
        doc = workflow_to_dict(wf)
        back = workflow_from_dict(doc)
        assert back.name == wf.name
        assert set(back.tasks) == set(wf.tasks)
        for tid, task in wf.tasks.items():
            bt = back.tasks[tid]
            assert [f.name for f in bt.inputs] == [f.name for f in task.inputs]
            assert [(f.name, f.size) for f in bt.outputs] == [
                (f.name, f.size) for f in task.outputs
            ]
            assert bt.compute_time == task.compute_time
            assert bt.extra_ops == task.extra_ops
        # Same dependency structure.
        assert [t.task_id for t in back.topological_order()] == [
            t.task_id for t in wf.topological_order()
        ]

    def test_file_roundtrip(self, tmp_path):
        wf = pipeline(3, extra_ops=2)
        path = tmp_path / "wf.json"
        save_workflow(wf, path)
        back = load_workflow(path)
        assert back.name == wf.name
        assert len(back) == 3
        # The file is genuine JSON.
        json.loads(path.read_text())

    def test_input_sizes_resolved_from_producer(self):
        doc = {
            "name": "w",
            "tasks": [
                {
                    "task_id": "a",
                    "outputs": [{"name": "x", "size": 777}],
                },
                {"task_id": "b", "inputs": [{"name": "x"}]},
            ],
        }
        wf = workflow_from_dict(doc)
        assert wf.tasks["b"].inputs[0].size == 777


class TestValidation:
    def test_missing_name(self):
        with pytest.raises(WorkflowFormatError):
            workflow_from_dict({"tasks": [{"task_id": "a"}]})

    def test_empty_tasks(self):
        with pytest.raises(WorkflowFormatError):
            workflow_from_dict({"name": "w", "tasks": []})

    def test_task_without_id(self):
        with pytest.raises(WorkflowFormatError):
            workflow_from_dict({"name": "w", "tasks": [{}]})

    def test_output_without_name(self):
        with pytest.raises(WorkflowFormatError):
            workflow_from_dict(
                {"name": "w", "tasks": [{"task_id": "a", "outputs": [{}]}]}
            )

    def test_cycle_rejected(self):
        doc = {
            "name": "cyclic",
            "tasks": [
                {
                    "task_id": "a",
                    "inputs": [{"name": "y"}],
                    "outputs": [{"name": "x", "size": 1}],
                },
                {
                    "task_id": "b",
                    "inputs": [{"name": "x"}],
                    "outputs": [{"name": "y", "size": 1}],
                },
            ],
        }
        from repro.workflow.dag import WorkflowValidationError

        with pytest.raises(WorkflowValidationError):
            workflow_from_dict(doc)

    def test_invalid_json_file(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(WorkflowFormatError):
            load_workflow(path)
