"""Focused tests for the engine's placement policy internals."""

import pytest

from repro.cloud.deployment import Deployment
from repro.cloud.presets import azure_4dc_topology
from repro.metadata.controller import ArchitectureController
from repro.util.units import MB
from repro.workflow.dag import Task, Workflow, WorkflowFile
from repro.workflow.engine import WorkflowEngine


@pytest.fixture
def dep():
    return Deployment(
        topology=azure_4dc_topology(jitter=False), n_nodes=8, seed=101
    )


def build(dep, fast_config, **kw):
    ctrl = ArchitectureController(dep, strategy="hybrid", config=fast_config)
    return WorkflowEngine(dep, ctrl.strategy, **kw), ctrl


class TestDataWeightedPlacement:
    def test_follows_heaviest_parent(self, dep, fast_config):
        """A consumer runs where most of its input bytes live."""
        wf = Workflow("weighted")
        big = WorkflowFile("big.dat", size=100 * MB)
        small = WorkflowFile("small.dat", size=1 * MB)
        wf.add_task(Task("big-producer", outputs=[big], compute_time=0.1))
        wf.add_task(
            Task("small-producer", outputs=[small], compute_time=2.0)
        )
        wf.add_task(
            Task("consumer", inputs=[big, small], compute_time=0.1)
        )
        engine, ctrl = build(dep, fast_config)
        res = engine.run(wf)
        ctrl.shutdown()
        sites = {r.task_id: r.site for r in res.task_results}
        assert sites["consumer"] == sites["big-producer"]

    def test_spill_prefers_nearby_sites(self, dep, fast_config):
        """When the home site is full, spill goes same-region first."""
        # 16 parallel consumers of one producer at (say) west-europe;
        # 2 VMs per site, so 14 tasks must spill.  The nearest site to
        # west-europe is north-europe (same region).
        wf = Workflow("spill")
        src = WorkflowFile("src.dat", size=10 * MB)
        wf.add_task(Task("producer", outputs=[src], compute_time=0.1))
        for i in range(8):
            wf.add_task(
                Task(f"consumer-{i}", inputs=[src], compute_time=5.0)
            )
        engine, ctrl = build(dep, fast_config)
        res = engine.run(wf)
        ctrl.shutdown()
        producer_site = next(
            r.site for r in res.task_results if r.task_id == "producer"
        )
        consumer_sites = [
            r.site
            for r in res.task_results
            if r.task_id.startswith("consumer")
        ]
        region_of = {
            dc.name: dc.region.name for dc in dep.topology
        }
        same_region = [
            s
            for s in consumer_sites
            if region_of[s] == region_of[producer_site]
        ]
        # With 8 long consumers on 2-VM sites, at least the producer's
        # site and its regional neighbour fill before oceans are crossed.
        assert len(same_region) >= 4

    def test_queueing_when_everyone_busy(self, dep, fast_config):
        """More ready tasks than VMs: all still complete, queued fairly."""
        wf = Workflow("oversubscribed")
        src = WorkflowFile("s.dat", size=1 * MB)
        wf.add_task(Task("producer", outputs=[src], compute_time=0.1))
        for i in range(30):  # ~4 waves on 8 VMs
            wf.add_task(
                Task(f"w-{i}", inputs=[src], compute_time=1.0)
            )
        engine, ctrl = build(dep, fast_config)
        res = engine.run(wf)
        ctrl.shutdown()
        assert len(res.task_results) == 31
        # Roughly 4 sequential waves of compute.
        assert res.makespan >= 3.0


class TestVmLoadAccounting:
    def test_load_returns_to_zero(self, dep, fast_config):
        engine, ctrl = build(dep, fast_config)
        from repro.workflow.patterns import scatter

        engine.run(scatter(12, compute_time=0.1))
        ctrl.shutdown()
        assert all(v == 0 for v in engine._vm_load.values())
