"""Tests for the workflow engine: execution, locality, spill, accounting."""

import pytest

from repro.cloud.deployment import Deployment
from repro.cloud.presets import azure_4dc_topology
from repro.metadata.controller import ArchitectureController
from repro.workflow.dag import Task, Workflow, WorkflowFile
from repro.workflow.engine import WorkflowEngine
from repro.workflow.patterns import gather, pipeline, scatter


@pytest.fixture
def dep():
    return Deployment(
        topology=azure_4dc_topology(jitter=False), n_nodes=8, seed=11
    )


def build_engine(dep, fast_config, strategy="hybrid", **kw):
    ctrl = ArchitectureController(dep, strategy=strategy, config=fast_config)
    return WorkflowEngine(dep, ctrl.strategy, **kw), ctrl


class TestExecution:
    def test_all_tasks_complete(self, dep, fast_config):
        engine, ctrl = build_engine(dep, fast_config)
        wf = scatter(6, compute_time=0.1, extra_ops=4)
        res = engine.run(wf)
        ctrl.shutdown()
        assert len(res.task_results) == len(wf)
        assert res.makespan > 0
        assert res.strategy == "hybrid"

    def test_dependencies_respected(self, dep, fast_config):
        engine, ctrl = build_engine(dep, fast_config)
        wf = pipeline(4, compute_time=0.1)
        res = engine.run(wf)
        ctrl.shutdown()
        finish = {r.task_id: r.finished_at for r in res.task_results}
        start = {r.task_id: r.started_at for r in res.task_results}
        for i in range(1, 4):
            assert start[f"pipeline-{i}"] >= finish[f"pipeline-{i-1}"]

    def test_makespan_at_least_critical_path(self, dep, fast_config):
        engine, ctrl = build_engine(dep, fast_config)
        wf = pipeline(3, compute_time=1.0)
        res = engine.run(wf)
        ctrl.shutdown()
        assert res.makespan >= wf.critical_path_time()

    def test_initial_inputs_materialized(self, dep, fast_config):
        engine, ctrl = build_engine(dep, fast_config)
        wf = Workflow("with-input")
        wf.add_task(
            Task(
                "consume",
                inputs=[WorkflowFile("stage-in.dat", size=1024)],
                compute_time=0.1,
            )
        )
        res = engine.run(wf)
        ctrl.shutdown()
        assert len(res.task_results) == 1

    def test_outputs_published_and_fetchable(self, dep, fast_config):
        engine, ctrl = build_engine(dep, fast_config)
        wf = gather(4, compute_time=0.05)
        res = engine.run(wf)
        ctrl.shutdown()
        # The collect task read every producer's output: data for all
        # five tasks' outputs must exist somewhere.
        assert engine.transfer.total_files() >= 5

    def test_ops_snapshot_only_covers_run(self, dep, fast_config):
        engine, ctrl = build_engine(dep, fast_config)
        res1 = engine.run(pipeline(2, compute_time=0.05, extra_ops=2))
        res2 = engine.run(
            pipeline(2, compute_time=0.05, extra_ops=2, name="p2")
        )
        ctrl.shutdown()
        assert len(res1.ops.records) > 0
        assert len(res2.ops.records) > 0
        # Strategy-wide stats accumulate; snapshots partition them.
        assert (
            len(ctrl.strategy.stats.records)
            == len(res1.ops.records) + len(res2.ops.records)
        )

    def test_extra_ops_performed(self, dep, fast_config):
        engine, ctrl = build_engine(dep, fast_config)
        wf = Workflow("solo")
        wf.add_task(Task("only", compute_time=0.01, extra_ops=10))
        res = engine.run(wf)
        ctrl.shutdown()
        assert len(res.ops.records) == 10

    def test_task_time_decomposition(self, dep, fast_config):
        engine, ctrl = build_engine(dep, fast_config)
        wf = pipeline(2, compute_time=0.5, extra_ops=4)
        res = engine.run(wf)
        ctrl.shutdown()
        for tr in res.task_results:
            assert tr.compute_time == pytest.approx(0.5)
            assert tr.metadata_time > 0
            assert tr.duration >= tr.compute_time + tr.metadata_time - 1e-9


class TestScheduling:
    def test_wide_stage_spills_across_sites(self, dep, fast_config):
        """A 1 -> N scatter must not serialize on the split's site."""
        engine, ctrl = build_engine(dep, fast_config)
        wf = scatter(16, compute_time=0.2)
        res = engine.run(wf)
        ctrl.shutdown()
        sites_used = set(res.tasks_per_site())
        assert len(sites_used) >= 3

    def test_locality_prefers_parent_site(self, dep, fast_config):
        engine, ctrl = build_engine(dep, fast_config)
        wf = pipeline(6, compute_time=0.1)
        res = engine.run(wf)
        ctrl.shutdown()
        # A narrow pipeline should mostly stay at one site.
        per_site = res.tasks_per_site()
        assert max(per_site.values()) >= 5

    def test_round_robin_without_locality(self, dep, fast_config):
        engine, ctrl = build_engine(
            dep, fast_config, locality_scheduling=False
        )
        wf = scatter(15, compute_time=0.1)
        res = engine.run(wf)
        ctrl.shutdown()
        per_site = res.tasks_per_site()
        assert len(per_site) == 4
        assert max(per_site.values()) - min(per_site.values()) <= 2

    def test_scratch_keys_deterministic(self):
        t = Task("t", extra_ops=5)
        keys = WorkflowEngine.scratch_keys(t)
        assert keys == ["t/scratch-0", "t/scratch-2", "t/scratch-4"]


class TestCrossStrategy:
    @pytest.mark.parametrize(
        "strategy", ["centralized", "replicated", "decentralized", "hybrid"]
    )
    def test_workflow_completes_under_each_strategy(
        self, dep, fast_config, strategy
    ):
        engine, ctrl = build_engine(dep, fast_config, strategy=strategy)
        wf = gather(5, compute_time=0.1, extra_ops=6)
        res = engine.run(wf)
        ctrl.shutdown()
        assert len(res.task_results) == 6
        assert res.strategy == ctrl.strategy.name
