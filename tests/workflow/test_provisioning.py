"""Tests for the Section III-C proactive data-provisioning extension."""

import pytest

from repro.cloud.deployment import Deployment
from repro.cloud.presets import azure_4dc_topology
from repro.metadata.controller import ArchitectureController
from repro.workflow.engine import WorkflowEngine
from repro.workflow.patterns import gather


@pytest.fixture
def dep():
    return Deployment(
        topology=azure_4dc_topology(jitter=False), n_nodes=8, seed=17
    )


def run_gather(dep, fast_config, proactive):
    ctrl = ArchitectureController(
        dep, strategy="decentralized", config=fast_config
    )
    engine = WorkflowEngine(
        dep,
        ctrl.strategy,
        proactive_provisioning=proactive,
        locality_scheduling=False,  # force remote inputs
    )
    res = engine.run(gather(8, compute_time=0.05))
    ctrl.shutdown()
    return res


class TestProactiveProvisioning:
    def test_same_results_either_mode(self, fast_config):
        seq = run_gather(
            Deployment(
                topology=azure_4dc_topology(jitter=False), n_nodes=8, seed=17
            ),
            fast_config,
            proactive=False,
        )
        par = run_gather(
            Deployment(
                topology=azure_4dc_topology(jitter=False), n_nodes=8, seed=17
            ),
            fast_config,
            proactive=True,
        )
        assert len(seq.task_results) == len(par.task_results) == 9

    def test_parallel_staging_is_faster(self, fast_config):
        """A fan-in task staging 8 remote inputs overlaps the fetches."""
        seq = run_gather(
            Deployment(
                topology=azure_4dc_topology(jitter=False), n_nodes=8, seed=17
            ),
            fast_config,
            proactive=False,
        )
        par = run_gather(
            Deployment(
                topology=azure_4dc_topology(jitter=False), n_nodes=8, seed=17
            ),
            fast_config,
            proactive=True,
        )
        seq_collect = next(
            r for r in seq.task_results if r.task_id == "gather-collect"
        )
        par_collect = next(
            r for r in par.task_results if r.task_id == "gather-collect"
        )
        assert par_collect.duration < seq_collect.duration

    def test_single_input_tasks_unaffected(self, dep, fast_config):
        ctrl = ArchitectureController(
            dep, strategy="hybrid", config=fast_config
        )
        engine = WorkflowEngine(
            dep, ctrl.strategy, proactive_provisioning=True
        )
        from repro.workflow.patterns import pipeline

        res = engine.run(pipeline(3, compute_time=0.05))
        ctrl.shutdown()
        assert len(res.task_results) == 3
