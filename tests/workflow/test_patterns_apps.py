"""Tests for the five access patterns and the two application models."""

import pytest

from repro.workflow.applications import (
    BUZZFLOW_JOBS,
    MONTAGE_JOBS,
    buzzflow,
    montage,
)
from repro.workflow.patterns import (
    broadcast,
    gather,
    pipeline,
    reduce_tree,
    scatter,
)
from repro.experiments.scenarios import SCENARIOS


class TestPipeline:
    def test_linear_chain(self):
        wf = pipeline(5)
        wf.validate()
        assert len(wf) == 5
        assert len(wf.roots()) == 1
        assert len(wf.sinks()) == 1
        assert len(wf.levels()) == 5  # fully sequential

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            pipeline(0)


class TestScatter:
    def test_shape(self):
        wf = scatter(6)
        wf.validate()
        assert len(wf) == 7
        levels = wf.levels()
        assert len(levels[0]) == 1 and len(levels[1]) == 6

    def test_workers_independent(self):
        wf = scatter(4)
        workers = [t for t in wf if t.stage == "worker"]
        for w in workers:
            assert len(wf.parents(w)) == 1


class TestGather:
    def test_shape(self):
        wf = gather(5)
        wf.validate()
        assert len(wf) == 6
        collect = wf.tasks["gather-collect"]
        assert len(wf.parents(collect)) == 5


class TestReduceTree:
    def test_binary_tree(self):
        wf = reduce_tree(8, arity=2)
        wf.validate()
        # 8 leaves + 4 + 2 + 1 reducers.
        assert len(wf) == 15
        assert len(wf.sinks()) == 1

    def test_arity_validation(self):
        with pytest.raises(ValueError):
            reduce_tree(4, arity=1)

    def test_uneven_leaves(self):
        wf = reduce_tree(5, arity=2)
        wf.validate()
        assert len(wf.sinks()) == 1


class TestBroadcast:
    def test_hot_entry_shape(self):
        wf = broadcast(7)
        wf.validate()
        source = wf.tasks["broadcast-source"]
        assert len(wf.children(source)) == 7
        # All consumers read the SAME file: the hot metadata entry.
        consumer_inputs = {
            f.name
            for t in wf
            if t.stage == "consumer"
            for f in t.inputs
        }
        assert len(consumer_inputs) == 1


class TestBuzzFlow:
    def test_job_count_matches_table1(self):
        wf = buzzflow()
        assert len(wf) == BUZZFLOW_JOBS == 72

    def test_near_pipeline_shape(self):
        """Long and narrow: many levels, small width."""
        wf = buzzflow()
        levels = wf.levels()
        assert len(levels) == 18
        assert all(len(lv) == 4 for lv in levels)

    def test_table1_totals(self):
        for name, spec in SCENARIOS.items():
            wf = buzzflow(
                ops_per_task=spec.ops_per_task,
                compute_time=spec.compute_time,
            )
            assert wf.total_metadata_ops == spec.paper_total_buzzflow

    def test_stage_dependencies(self):
        wf = buzzflow(width=3, n_stages=4)
        t = wf.tasks["buzz-2-0"]
        parents = {p.task_id for p in wf.parents(t)}
        assert parents == {"buzz-1-0", "buzz-1-1", "buzz-1-2"}


class TestMontage:
    def test_job_count_matches_table1(self):
        wf = montage()
        assert len(wf) == MONTAGE_JOBS == 160

    def test_split_parallel_merge_shape(self):
        wf = montage()
        levels = wf.levels()
        assert len(levels) == 4  # split, project, merge, mosaic
        assert len(levels[0]) == 1
        assert len(levels[1]) == 156
        assert len(levels[2]) == 2
        assert len(levels[3]) == 1

    def test_table1_totals(self):
        # SS: the split job's 156 mandatory output publishes exceed the
        # 100-op budget, so the total lands 0.35 % above Table I.
        ss = SCENARIOS["SS"]
        wf = montage(ops_per_task=ss.ops_per_task)
        assert ss.paper_total_montage == 16_000
        assert abs(wf.total_metadata_ops - 16_000) / 16_000 < 0.005
        # CI and MI budgets exceed the structural op counts: exact.
        ci = SCENARIOS["CI"]
        wf = montage(ops_per_task=ci.ops_per_task)
        assert wf.total_metadata_ops == 32_000
        mi = SCENARIOS["MI"]
        wf = montage(ops_per_task=mi.ops_per_task)
        assert wf.total_metadata_ops == 160_000  # paper rounds to 150k

    def test_split_fans_out_to_all_projections(self):
        wf = montage(n_parallel=12, n_merges=2)
        split = wf.tasks["montage-split"]
        assert len(wf.children(split)) == 12

    def test_merge_divisibility_enforced(self):
        with pytest.raises(ValueError):
            montage(n_parallel=5, n_merges=2)
