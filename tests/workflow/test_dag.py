"""Tests for the workflow DAG structures."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workflow.dag import (
    Task,
    Workflow,
    WorkflowFile,
    WorkflowValidationError,
)


def wf_chain(n):
    wf = Workflow("chain")
    prev = None
    for i in range(n):
        out = WorkflowFile(f"f{i}")
        wf.add_task(
            Task(
                f"t{i}",
                inputs=[prev] if prev else [],
                outputs=[out],
                compute_time=1.0,
            )
        )
        prev = out
    return wf


class TestValidation:
    def test_empty_names_rejected(self):
        with pytest.raises(ValueError):
            Workflow("")
        with pytest.raises(ValueError):
            Task("")
        with pytest.raises(ValueError):
            WorkflowFile("")

    def test_duplicate_task_rejected(self):
        wf = Workflow("w")
        wf.add_task(Task("a"))
        with pytest.raises(WorkflowValidationError):
            wf.add_task(Task("a"))

    def test_write_once_enforced(self):
        wf = Workflow("w")
        wf.add_task(Task("a", outputs=[WorkflowFile("f")]))
        with pytest.raises(WorkflowValidationError, match="write-once"):
            wf.add_task(Task("b", outputs=[WorkflowFile("f")]))

    def test_duplicate_outputs_within_task(self):
        with pytest.raises(ValueError):
            Task("a", outputs=[WorkflowFile("f"), WorkflowFile("f")])

    def test_negative_compute_rejected(self):
        with pytest.raises(ValueError):
            Task("a", compute_time=-1)


class TestGraphQueries:
    def test_parents_children(self):
        wf = wf_chain(3)
        t0, t1, t2 = (wf.tasks[f"t{i}"] for i in range(3))
        assert wf.parents(t0) == []
        assert wf.parents(t1) == [t0]
        assert wf.children(t1) == [t2]
        assert wf.producer_of("f0") is t0
        assert wf.producer_of("external") is None

    def test_roots_and_sinks(self):
        wf = wf_chain(4)
        assert [t.task_id for t in wf.roots()] == ["t0"]
        assert [t.task_id for t in wf.sinks()] == ["t3"]

    def test_initial_inputs(self):
        wf = Workflow("w")
        wf.add_task(Task("a", inputs=[WorkflowFile("external.dat")]))
        assert [f.name for f in wf.initial_inputs()] == ["external.dat"]

    def test_diamond_parents_distinct(self):
        wf = Workflow("d")
        a_out = WorkflowFile("a-out")
        b_out = WorkflowFile("b-out")
        wf.add_task(Task("a", outputs=[a_out]))
        wf.add_task(Task("b", inputs=[a_out], outputs=[b_out]))
        wf.add_task(Task("c", inputs=[a_out], outputs=[WorkflowFile("c-out")]))
        wf.add_task(
            Task("d", inputs=[b_out, WorkflowFile("c-out")])
        )
        d = wf.tasks["d"]
        assert sorted(t.task_id for t in wf.parents(d)) == ["b", "c"]


class TestOrdering:
    def test_topological_order_respects_deps(self):
        wf = wf_chain(5)
        order = [t.task_id for t in wf.topological_order()]
        assert order == [f"t{i}" for i in range(5)]

    def test_cycle_detected(self):
        wf = Workflow("cyclic")
        f1, f2 = WorkflowFile("f1"), WorkflowFile("f2")
        wf.add_task(Task("a", inputs=[f2], outputs=[f1]))
        wf.add_task(Task("b", inputs=[f1], outputs=[f2]))
        with pytest.raises(WorkflowValidationError, match="cycle"):
            wf.topological_order()

    def test_levels(self):
        wf = Workflow("w")
        s = WorkflowFile("s")
        wf.add_task(Task("split", outputs=[s]))
        for i in range(3):
            wf.add_task(
                Task(f"p{i}", inputs=[s], outputs=[WorkflowFile(f"o{i}")])
            )
        levels = wf.levels()
        assert [t.task_id for t in levels[0]] == ["split"]
        assert sorted(t.task_id for t in levels[1]) == ["p0", "p1", "p2"]

    def test_critical_path(self):
        wf = wf_chain(4)  # four 1-second tasks in sequence
        assert wf.critical_path_time() == 4.0

    def test_metadata_ops_total(self):
        wf = Workflow("w")
        wf.add_task(Task("a", outputs=[WorkflowFile("f")], extra_ops=10))
        assert wf.total_metadata_ops == 11


class TestDagProperties:
    @given(
        widths=st.lists(
            st.integers(min_value=1, max_value=5), min_size=1, max_size=6
        )
    )
    @settings(max_examples=30)
    def test_layered_dag_invariants(self, widths):
        """For any layered DAG: topo order valid, levels match layers."""
        wf = Workflow("rand")
        prev_outputs = []
        for li, width in enumerate(widths):
            outputs = []
            for j in range(width):
                out = WorkflowFile(f"L{li}-{j}")
                outputs.append(out)
                wf.add_task(
                    Task(
                        f"t{li}-{j}",
                        inputs=list(prev_outputs),
                        outputs=[out],
                    )
                )
            prev_outputs = outputs
        order = wf.topological_order()
        assert len(order) == sum(widths)
        pos = {t.task_id: i for i, t in enumerate(order)}
        for t in wf:
            for p in wf.parents(t):
                assert pos[p.task_id] < pos[t.task_id]
        levels = wf.levels()
        assert [len(lv) for lv in levels] == widths
        # Critical path: one task per layer.
        assert wf.critical_path_time() == pytest.approx(len(widths) * 1.0)
