"""Tests for the Section III-C speculative data provisioner."""

import pytest

from repro.cloud.deployment import Deployment
from repro.cloud.presets import azure_4dc_topology
from repro.metadata.controller import ArchitectureController
from repro.util.units import MB
from repro.workflow.dag import Task, Workflow, WorkflowFile
from repro.workflow.engine import WorkflowEngine


def staggered_gather(n_producers=4, file_size=20 * MB, spread=2.0):
    """Producers with staggered compute times feeding one consumer --
    the shape where prefetching overlaps transfers with the straggler."""
    wf = Workflow("staggered-gather")
    produced = []
    for i in range(n_producers):
        out = WorkflowFile(f"sg/part-{i}", size=file_size)
        produced.append(out)
        wf.add_task(
            Task(
                f"producer-{i}",
                outputs=[out],
                compute_time=0.5 + i * spread,
                stage="producer",
            )
        )
    wf.add_task(
        Task("collect", inputs=produced, compute_time=0.5, stage="collect")
    )
    return wf


def run(data_provisioning, seed=91, fast_config=None):
    dep = Deployment(
        topology=azure_4dc_topology(jitter=False), n_nodes=8, seed=seed
    )
    ctrl = ArchitectureController(dep, strategy="hybrid", config=fast_config)
    engine = WorkflowEngine(
        dep,
        ctrl.strategy,
        data_provisioning=data_provisioning,
        locality_scheduling=False,  # spread producers across sites
    )
    res = engine.run(staggered_gather())
    ctrl.shutdown()
    return res, engine


class TestDataProvisioner:
    def test_prefetch_reduces_collector_stall(self, fast_config):
        base, _ = run(False, fast_config=fast_config)
        pre, engine = run(True, fast_config=fast_config)
        base_collect = next(
            r for r in base.task_results if r.task_id == "collect"
        )
        pre_collect = next(
            r for r in pre.task_results if r.task_id == "collect"
        )
        # Early producers' outputs were already in place: the collector
        # spends less time on transfers.
        assert pre_collect.transfer_time < base_collect.transfer_time
        assert engine.last_provisioner.prefetches_started > 0

    def test_hit_rate_scored(self, fast_config):
        _, engine = run(True, fast_config=fast_config)
        prov = engine.last_provisioner
        scored = [r for r in prov.records if r.useful is not None]
        assert scored, "placement should score predictions"
        assert 0.0 <= prov.hit_rate <= 1.0

    def test_results_identical_either_way(self, fast_config):
        base, _ = run(False, fast_config=fast_config)
        pre, _ = run(True, fast_config=fast_config)
        assert len(base.task_results) == len(pre.task_results) == 5
        # Prefetching must never slow the workflow down.
        assert pre.makespan <= base.makespan + 1e-6

    def test_disabled_by_default(self, fast_config):
        dep = Deployment(
            topology=azure_4dc_topology(jitter=False), n_nodes=4, seed=92
        )
        ctrl = ArchitectureController(
            dep, strategy="hybrid", config=fast_config
        )
        engine = WorkflowEngine(dep, ctrl.strategy)
        engine.run(staggered_gather(n_producers=2))
        ctrl.shutdown()
        assert engine.last_provisioner is None
