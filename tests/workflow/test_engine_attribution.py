"""Regression: per-run op attribution under interleaved workflows.

The engine used to snapshot a run's ops by slicing
``strategy.stats.records[ops_before:]`` -- correct for sequential runs,
wrong the moment two ``execute`` processes interleave on one shared
strategy: each run's slice swallowed the other's records.  Ops are now
tagged with the originating run and filtered by tag; these tests pin
the contract with two concurrently executing workflows.
"""

import pytest

from repro.sim import AllOf
from repro.cloud.deployment import Deployment
from repro.metadata.controller import ArchitectureController
from repro.workflow.engine import WorkflowEngine
from repro.workflow.patterns import pipeline, scatter


def run_interleaved(strategy="hybrid", seed=5):
    """Execute two workflows concurrently on one engine; returns results."""
    dep = Deployment(n_nodes=8, seed=seed)
    ctrl = ArchitectureController(dep, strategy=strategy)
    engine = WorkflowEngine(dep, ctrl.strategy)
    wf_a = scatter(6, compute_time=0.3, extra_ops=4, name="wf-a")
    wf_b = pipeline(5, compute_time=0.3, extra_ops=4, name="wf-b")
    procs = {
        "a": dep.env.process(engine.execute(wf_a), name="run-a"),
        "b": dep.env.process(engine.execute(wf_b), name="run-b"),
    }
    dep.env.run(until=AllOf(dep.env, list(procs.values())))
    ctrl.shutdown()
    return (
        procs["a"].value,
        procs["b"].value,
        (wf_a, wf_b),
        ctrl.strategy,
    )


class TestInterleavedAttribution:
    def test_runs_actually_interleave(self):
        res_a, res_b, _, _ = run_interleaved()
        # Both started at t=0 and overlapped for their whole lives --
        # the scenario the positional slice misattributed.
        assert res_a.started_at == res_b.started_at == 0.0
        assert res_a.finished_at > res_b.started_at
        assert res_b.finished_at > res_a.started_at

    @pytest.mark.parametrize(
        "strategy", ["centralized", "decentralized", "hybrid"]
    )
    def test_each_run_gets_exactly_its_own_ops(self, strategy):
        res_a, res_b, (wf_a, wf_b), strat = run_interleaved(strategy)
        # Each snapshot carries exactly its DAG's client op count...
        assert len(res_a.ops.records) == wf_a.total_metadata_ops
        assert len(res_b.ops.records) == wf_b.total_metadata_ops
        # ...tagged with its own run...
        assert {r.run for r in res_a.ops.records} == {res_a.run}
        assert {r.run for r in res_b.ops.records} == {res_b.run}
        assert res_a.run != res_b.run
        # ...and together they partition the strategy's global record
        # list: nothing lost, nothing double-attributed.
        assert (
            len(res_a.ops.records) + len(res_b.ops.records)
            == len(strat.stats.records)
        )
        # Snapshots are columnar sub-collections (no object sharing
        # with the global list), so partition by value: the two
        # snapshots together hold exactly the global records.
        both = sorted(
            res_a.ops.records + res_b.ops.records,
            key=lambda r: (r.started_at, r.finished_at, r.key, r.run),
        )
        everything = sorted(
            strat.stats.records,
            key=lambda r: (r.started_at, r.finished_at, r.key, r.run),
        )
        assert both == everything

    def test_positional_slice_would_have_misattributed(self):
        """The old ``records[ops_before:]`` scheme is provably wrong here."""
        res_a, res_b, _, strat = run_interleaved()
        # Both runs saw ops_before == 0, so each old-style snapshot
        # would have claimed *every* record finished before its own
        # completion -- more than the run actually issued.
        finished_before_a = [
            r
            for r in strat.stats.records
            if r.finished_at <= res_a.finished_at
        ]
        assert len(finished_before_a) > len(res_a.ops.records)

    def test_sequential_runs_unchanged(self):
        """Tag filtering reproduces the sequential contract exactly."""
        dep = Deployment(n_nodes=8, seed=5)
        ctrl = ArchitectureController(dep, strategy="hybrid")
        engine = WorkflowEngine(dep, ctrl.strategy)
        first = engine.run(scatter(6, compute_time=0.3, extra_ops=4))
        second = engine.run(pipeline(5, compute_time=0.3, extra_ops=4))
        ctrl.shutdown()
        assert (
            len(first.ops.records) + len(second.ops.records)
            == len(ctrl.strategy.stats.records)
        )
        assert first.run != second.run

    def test_stats_runs_breakdown(self):
        res_a, res_b, _, strat = run_interleaved()
        by_run = strat.stats.runs()
        assert by_run == {
            res_a.run: len(res_a.ops.records),
            res_b.run: len(res_b.ops.records),
        }

    def test_explicit_run_tag_respected(self):
        dep = Deployment(n_nodes=8, seed=5)
        ctrl = ArchitectureController(dep, strategy="hybrid")
        engine = WorkflowEngine(dep, ctrl.strategy)
        proc = dep.env.process(
            engine.execute(scatter(4, extra_ops=2), run="custom-tag")
        )
        res = dep.env.run(until=proc)
        ctrl.shutdown()
        assert res.run == "custom-tag"
        assert {r.run for r in res.ops.records} == {"custom-tag"}
