#!/usr/bin/env python
"""A genome-sequencing pipeline: the many-small-files regime.

The paper motivates its design with workloads like human-genome
sequencing -- "up to 30 million files averaging 190 KB".  This example
models a (scaled-down) sequencing pipeline as a chain of analysis
stages, each emitting many small trace files consumed by the next
stage, and shows why the advisor picks the *hybrid* strategy for
pipeline-shaped workloads: consecutive stages run where their inputs
were produced, so local replicas turn almost every metadata read into
an intra-datacenter operation.

Run:  python examples/genomics_pipeline.py
"""

from repro import ArchitectureController, Deployment, StrategyName
from repro.analysis import profile_workflow, recommend_strategy
from repro.experiments.reporting import render_table
from repro.util.units import KB
from repro.workflow import WorkflowEngine
from repro.workflow.dag import Task, Workflow, WorkflowFile

#: Sequencing stages, in order; each stage reads the previous stage's
#: trace files and emits its own.
STAGES = [
    ("basecall", 40),
    ("trim", 40),
    ("align", 40),
    ("dedup", 30),
    ("variant-call", 30),
    ("annotate", 20),
]

TRACE_FILE = 190 * KB  # the paper's human-genome average


def build_pipeline(files_per_stage_scale: int = 1) -> Workflow:
    """A chain of stages, each producing many small trace files."""
    wf = Workflow("genome-pipeline")
    prev_outputs = []
    for stage, n_files in STAGES:
        n_files *= files_per_stage_scale
        outputs = [
            WorkflowFile(f"{stage}/trace-{i}.ztr", size=TRACE_FILE)
            for i in range(n_files)
        ]
        wf.add_task(
            Task(
                task_id=stage,
                inputs=list(prev_outputs),
                outputs=outputs,
                compute_time=2.0,
                # Per-read provenance and QC entries: sequencing stages
                # publish far more registry entries than trace files
                # (the paper's 30-million-file regime, scaled down).
                extra_ops=600,
                stage=stage,
            )
        )
        prev_outputs = outputs
    return wf


def main() -> None:
    wf = build_pipeline()
    print(
        f"pipeline: {len(wf)} stages, "
        f"{sum(len(t.outputs) for t in wf)} trace files, "
        f"{wf.total_metadata_ops} metadata ops"
    )

    prof = profile_workflow(wf, n_sites=4, n_nodes=16)
    advice, reasons = recommend_strategy(prof)
    print(f"advisor recommends: {advice}")
    for r in reasons:
        print(f"  - {r}")
    assert advice == StrategyName.HYBRID

    # The centralized registry is "arbitrarily placed" (paper IV-A); in
    # a shared multi-site cloud it will generally NOT be colocated with
    # this particular pipeline's chain, so place it across the ocean.
    from repro import MetadataConfig

    cfg = MetadataConfig(home_site="east-us")
    rows = []
    for strat in (StrategyName.CENTRALIZED, StrategyName.HYBRID):
        dep = Deployment(n_nodes=16, seed=13)
        ctrl = ArchitectureController(dep, strategy=strat, config=cfg)
        engine = WorkflowEngine(dep, ctrl.strategy)
        res = engine.run(build_pipeline())
        ctrl.shutdown()
        rows.append(
            [
                strat,
                res.makespan,
                res.total_metadata_time,
                res.total_transfer_time,
                f"{res.ops.local_fraction:.0%}",
            ]
        )

    print()
    print(
        render_table(
            [
                "strategy",
                "makespan (s)",
                "metadata (s)",
                "transfers (s)",
                "local ops",
            ],
            rows,
            title="Genome pipeline, 16 nodes / 4 DCs",
        )
    )
    hybrid_local = rows[1][4]
    print(
        f"\nwith locality scheduling + local replicas, {hybrid_local} of "
        "metadata ops stayed inside a datacenter."
    )


if __name__ == "__main__":
    main()
