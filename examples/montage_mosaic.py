#!/usr/bin/env python
"""Montage on a multi-site cloud: comparing all four metadata strategies.

Reproduces (at example scale) the paper's headline workflow result: the
astronomy mosaic pipeline -- a split, 156 parallel projection jobs and
a two-level merge -- executed over 32 nodes in 4 datacenters under each
metadata management strategy, in the metadata-intensive regime where
the paper reports its 28 % gain for the hybrid strategy.

Run:  python examples/montage_mosaic.py  [--ops 400]
"""

import argparse

from repro import ArchitectureController, Deployment, MetadataConfig, StrategyName
from repro.analysis import profile_workflow, recommend_strategy
from repro.experiments.reporting import render_table
from repro.workflow import WorkflowEngine, montage


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--ops",
        type=int,
        default=400,
        help="metadata operations per task (1000 = the paper's MI run)",
    )
    args = parser.parse_args()

    wf = montage(ops_per_task=args.ops, compute_time=1.0)
    print(
        f"Montage: {len(wf)} jobs, {wf.total_metadata_ops} metadata ops, "
        f"{len(wf.levels())} stages"
    )

    # What does the Section VII advisor say before we run anything?
    prof = profile_workflow(wf, n_sites=4, n_nodes=32)
    advice, reasons = recommend_strategy(prof)
    print(f"advisor recommends: {advice}")
    for r in reasons:
        print(f"  - {r}")

    rows = []
    baseline = None
    for strat in StrategyName.all():
        dep = Deployment(n_nodes=32, seed=7)
        cfg = MetadataConfig(
            home_site="east-us", hybrid_sync_replication=True
        )
        ctrl = ArchitectureController(dep, strategy=strat, config=cfg)
        engine = WorkflowEngine(dep, ctrl.strategy)
        res = engine.run(
            montage(ops_per_task=args.ops, compute_time=1.0)
        )
        ctrl.shutdown()
        if strat == StrategyName.CENTRALIZED:
            baseline = res.makespan
        gain = 100 * (1 - res.makespan / baseline) if baseline else 0.0
        rows.append(
            [
                strat,
                res.makespan,
                f"{gain:+.0f}%",
                res.total_metadata_time,
                f"{res.ops.local_fraction:.0%}",
            ]
        )

    print()
    print(
        render_table(
            ["strategy", "makespan (s)", "vs baseline", "metadata (s)", "local ops"],
            rows,
            title=f"Montage, {args.ops} ops/task, 32 nodes / 4 DCs",
        )
    )
    print(
        "\npaper reference (MI): hybrid beats the centralized baseline "
        "by ~28 %."
    )


if __name__ == "__main__":
    main()
