#!/usr/bin/env python
"""Placement policies compared on the same Montage-style workflow.

Runs the astronomy mosaic pipeline (a split, a wide parallel projection
stage and a two-level merge) under each of the five task-placement
policies of ``repro.scheduling`` -- on the paper's 4-DC Azure testbed
first, then on the heterogeneous capped fan-out WAN where proximity and
capacity disagree -- and prints makespan / transfer-bytes tables.

The takeaway mirrors docs/scheduling.md: on a uniform WAN the paper's
locality heuristic is hard to beat, but the moment links are
heterogeneous or capped, bandwidth-aware and hybrid placement win by
routing bulk staging around the narrow pipes.

Run:  python examples/scheduler_comparison.py  [--ops 100]
"""

import argparse

from repro import (
    ArchitectureController,
    Deployment,
    MetadataConfig,
    SCHEDULER_NAMES,
)
from repro.experiments.reporting import render_table
from repro.experiments.scheduler_compare import run_scheduler_compare
from repro.util.units import MB
from repro.workflow import WorkflowEngine, montage


def montage_table(ops: int) -> None:
    rows = []
    for policy in SCHEDULER_NAMES:
        dep = Deployment(n_nodes=32, seed=7, bandwidth_model="fair")
        cfg = MetadataConfig(home_site="east-us")
        ctrl = ArchitectureController(dep, strategy="hybrid", config=cfg)
        engine = WorkflowEngine(dep, ctrl.strategy, scheduler=policy)
        res = engine.run(montage(ops_per_task=ops, compute_time=1.0))
        ctrl.shutdown()
        rows.append(
            [
                policy,
                f"{res.makespan:.1f}",
                f"{res.total_transfer_time:.1f}",
                f"{engine.transfer.wan_bytes / MB:.1f}",
            ]
        )
    print(
        render_table(
            ["scheduler", "makespan (s)", "transfer wait (s)", "WAN MB"],
            rows,
            title=(
                f"Montage ({ops} ops/task) x 5 placement policies, "
                "32 nodes / 4 DCs, fair WAN"
            ),
        )
    )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--ops",
        type=int,
        default=100,
        help="metadata operations per Montage task",
    )
    args = parser.parse_args()

    montage_table(args.ops)

    print()
    print(
        run_scheduler_compare(
            bandwidth_model="fair", hub_egress_bw=80 * MB
        ).render()
    )


if __name__ == "__main__":
    main()
