#!/usr/bin/env python
"""Quickstart: publish and resolve workflow metadata across datacenters.

Builds the paper's 4-datacenter Azure deployment, activates the hybrid
(decentralized + locally replicated) strategy and walks through the
basic operations: publishing a file's metadata from one site, resolving
it from another, and inspecting where the DHT placed it.

Run:  python examples/quickstart.py
"""

from repro import (
    ArchitectureController,
    Deployment,
    RegistryEntry,
)
from repro.util.units import MB, fmt_duration


def main() -> None:
    # A 32-node deployment spread evenly over the 4 Azure datacenters.
    dep = Deployment(n_nodes=32, seed=42)
    print(f"deployment: {dep}")
    print(f"sites: {', '.join(dep.sites)}")
    print(f"most central site: {dep.topology.most_central().name}")

    # The architecture controller activates a strategy; 'dr' is the
    # paper's alias for decentralized-with-local-replication.
    ctrl = ArchitectureController(dep, strategy="dr")
    strategy = ctrl.strategy

    def scenario(env):
        # A task in West Europe produces a mosaic tile and publishes it.
        entry = RegistryEntry(
            key="mosaic/tile-042.fits",
            locations=frozenset({"west-europe"}),
            size=2 * MB,
        )
        t0 = env.now
        yield from ctrl.write("west-europe", entry)
        print(f"write from west-europe  : {fmt_duration(env.now - t0)}")

        # The same site reads it back: served by the local replica.
        t0 = env.now
        local = yield from ctrl.read("west-europe", entry.key)
        print(f"read  from west-europe  : {fmt_duration(env.now - t0)} "
              f"(local replica hit)")

        # A distant site resolves it through the DHT home instance.
        t0 = env.now
        remote = yield from ctrl.read(
            "south-central-us", entry.key, require_found=True
        )
        print(f"read  from s.central-us : {fmt_duration(env.now - t0)} "
              f"(via DHT home '{strategy.home_of(entry.key)}')")
        assert local is not None and remote is not None
        print(f"resolved locations      : {sorted(remote.locations)}")

    dep.run_process(scenario(dep.env))
    ctrl.shutdown()

    print(f"\nregistry occupancy      : {strategy.registry_for_display()}")
    print(f"operations recorded     : {strategy.stats.count}")
    print(f"local-op fraction       : {strategy.stats.local_fraction:.0%}")


if __name__ == "__main__":
    main()
