#!/usr/bin/env python
"""Elastic clouds: surviving site joins, leaves and cache failures.

The paper's related-work section singles out *metadata-server
volatility* -- elastic clouds adding and removing nodes -- as the
failure mode of naive hashing and subtree partitioning.  This example
demonstrates the machinery that absorbs it:

1. consistent hashing bounds the re-mapped keyspace when a site joins
   (~1/n of keys, vs ~all keys for modulo placement);
2. the architecture controller migrates metadata when switching
   strategies mid-deployment;
3. the HA cache tier (primary + replica) hides an instance failure.

Run:  python examples/elastic_scaling.py
"""

from repro import (
    ArchitectureController,
    ConsistentHashRing,
    Deployment,
    RegistryEntry,
)
from repro.cloud.presets import AZURE_4DC
from repro.experiments.reporting import render_table
from repro.metadata.hashring import ModuloPartitioner


def remapping_comparison() -> None:
    """How many keys move when a fifth datacenter joins?"""
    keys = [f"file-{i}" for i in range(20_000)]

    ring = ConsistentHashRing(AZURE_4DC, virtual_nodes=64)
    before = {k: ring.site_for(k) for k in keys}
    ring.add_site("japan-east")
    ring_moved = sum(1 for k in keys if ring.site_for(k) != before[k])

    mod = ModuloPartitioner(AZURE_4DC)
    mod_before = {k: mod.site_for(k) for k in keys}
    mod_after = ModuloPartitioner(list(AZURE_4DC) + ["japan-east"])
    mod_moved = sum(1 for k in keys if mod_after.site_for(k) != mod_before[k])

    print(
        render_table(
            ["placement scheme", "keys re-mapped", "fraction"],
            [
                ["consistent hash ring", ring_moved, f"{ring_moved/len(keys):.0%}"],
                ["modulo partitioner", mod_moved, f"{mod_moved/len(keys):.0%}"],
            ],
            title=f"A 5th site joins ({len(keys)} keys)",
        )
    )
    assert ring_moved < mod_moved


def live_strategy_switch() -> None:
    """Publish under centralized, then re-partition to hybrid, live."""
    dep = Deployment(n_nodes=8, seed=3)
    ctrl = ArchitectureController(dep, strategy="centralized")

    def scenario(env):
        for i in range(50):
            yield from ctrl.write(
                dep.sites[i % 4], RegistryEntry(key=f"dataset/part-{i}")
            )
        t0 = env.now
        yield from ctrl.switch("hybrid", migrate=True)
        switch_cost = env.now - t0
        # Every entry still resolves after the re-partition.
        got = yield from ctrl.read(
            "north-europe", "dataset/part-17", require_found=True
        )
        assert got is not None
        return switch_cost

    proc = dep.env.process(scenario(dep.env))
    switch_cost = dep.env.run(until=proc)
    ctrl.shutdown()
    print(
        f"\nlive strategy switch centralized -> hybrid: 50 entries "
        f"re-partitioned in {switch_cost:.2f}s simulated "
        "(migration is never free -- pick the right strategy up front)"
    )


def cache_failover() -> None:
    """The HA cache tier hides a primary failure mid-run."""
    dep = Deployment(n_nodes=8, seed=4)
    ctrl = ArchitectureController(dep, strategy="hybrid")
    strat = ctrl.strategy

    def scenario(env):
        for i in range(20):
            yield from ctrl.write(
                "west-europe", RegistryEntry(key=f"chkpt-{i}")
            )
        strat.registries["west-europe"].cache.fail_primary()
        got = yield from ctrl.read(
            "west-europe", "chkpt-7", require_found=True
        )
        assert got is not None

    dep.env.run(until=dep.env.process(scenario(dep.env)))
    ctrl.shutdown()
    cache = strat.registries["west-europe"].cache
    print(
        f"\nprimary cache failure at west-europe: {cache.failovers} "
        f"failover, replica promoted, all {len(cache)} entries intact, "
        "reads uninterrupted"
    )


if __name__ == "__main__":
    remapping_comparison()
    live_strategy_switch()
    cache_failover()
