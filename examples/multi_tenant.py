#!/usr/bin/env python
"""Two workflows sharing one multi-site metadata service.

The paper's introduction motivates multi-site deployments with "the
possibility to globally optimize the performance of multiple workflows
that share a common public cloud infrastructure".  This example runs
BuzzFlow and Montage *concurrently* on one deployment and one metadata
service, and compares how the centralized baseline and the hybrid
strategy absorb the combined load -- with a registry monitor sampling
queue buildup at the shared instance.

Run:  python examples/multi_tenant.py
"""

from repro import ArchitectureController, Deployment, MetadataConfig, StrategyName
from repro.analysis.monitor import RegistryMonitor
from repro.experiments.reporting import render_table
from repro.sim import AllOf
from repro.workflow import WorkflowEngine, buzzflow, montage


def run_tenants(strategy: str):
    dep = Deployment(n_nodes=32, seed=19)
    cfg = MetadataConfig(home_site="east-us", hybrid_sync_replication=True)
    ctrl = ArchitectureController(dep, strategy=strategy, config=cfg)
    engine = WorkflowEngine(dep, ctrl.strategy)
    monitor = RegistryMonitor(dep.env, ctrl.strategy, interval=5.0)

    # Launch both tenants at t=0; they contend for the same VMs and the
    # same metadata service.
    tenants = {
        "buzzflow": dep.env.process(
            engine.execute(buzzflow(ops_per_task=300, compute_time=1.0)),
            name="tenant-buzzflow",
        ),
        "montage": dep.env.process(
            engine.execute(montage(ops_per_task=300, compute_time=1.0)),
            name="tenant-montage",
        ),
    }
    dep.env.run(until=AllOf(dep.env, list(tenants.values())))
    monitor.stop()
    ctrl.shutdown()
    results = {name: proc.value for name, proc in tenants.items()}
    return results, monitor


def main() -> None:
    rows = []
    queue_peaks = {}
    for strategy in (StrategyName.CENTRALIZED, StrategyName.HYBRID):
        results, monitor = run_tenants(strategy)
        queue_peaks[strategy] = monitor.peak_queue_length()
        for name, res in sorted(results.items()):
            rows.append(
                [
                    strategy,
                    name,
                    res.makespan,
                    res.total_metadata_time,
                    f"{res.ops.local_fraction:.0%}",
                ]
            )

    print(
        render_table(
            ["strategy", "tenant", "makespan (s)", "metadata (s)", "local ops"],
            rows,
            title="Two tenants sharing 32 nodes / 4 DCs",
        )
    )
    print(
        render_table(
            ["strategy", "peak registry queue"],
            sorted(queue_peaks.items()),
            title="\nContention at the metadata service",
        )
    )
    print(
        "\nthe shared centralized instance queues both tenants' traffic; "
        "the hybrid service spreads it across sites."
    )


if __name__ == "__main__":
    main()
